// Package netcheck cross-validates real-transport executions against
// the simulator: it derives an ICC-space spread envelope from N
// deterministic simulator replicas (package envelope) and asserts that
// nondeterministic real-mesh runs (gossip.RunNet over package
// transport) land inside it. This is the statistical bridge the
// real-network mode's credibility rests on — no golden outputs exist
// for real runs, but the simulator bounds what spreading on this graph
// with this protocol can look like, and a real run outside those bounds
// is a real disagreement.
//
// The same harness backs `make netcheck` (goroutine mesh, tier-1 time
// budget, via the tests in this package), `gossipsim -mode net`
// (one-shot CLI runs) and `cmd/gossipnode` (multi-process TCP fleets,
// where the lead process assembles the fleet's informed times and
// applies the same verdict).
package netcheck

import (
	"fmt"
	"time"

	"gossip/internal/curve"
	"gossip/internal/envelope"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/transport"
)

// Spec is one cross-validation workload: a topology, a driver and a
// seed family, plus replica/trial counts.
type Spec struct {
	// Name labels the spec in reports, e.g. "push-pull/clique".
	Name string
	// CSR is the topology.
	CSR *graph.CSR
	// Driver names a Prepare-capable driver (push-pull, flood).
	Driver string
	// Opts is the shared option surface. Opts.Seed is the base of the
	// seed family: simulator replica i runs with Seed+i, and real trials
	// reuse Seed (their nondeterminism comes from the fabric, not the
	// seed).
	Opts gossip.DriverOptions
	// Replicas is the number of simulator runs the envelope is built
	// from (default 16).
	Replicas int
	// Trials is the number of real-mesh runs to classify (default 5).
	Trials int
	// Round is the real-mesh tick length (default 2ms).
	Round time.Duration
	// Envelope shapes construction and classification; the zero value
	// gets the netcheck defaults (32 levels, Dilation 3, BandTolerance
	// 0.2 — up to a fifth of levels may be jitter outliers): a real
	// exchange's ACK lands a tick or two after its SYN, where the
	// calendar collapses the round trip into one round, so real
	// incidence runs up to ~2-3x slower than simulated incidence at
	// every level — a uniform time dilation, exactly what the Dilation
	// slack absorbs while still rejecting differently shaped spreads.
	Envelope envelope.Options
}

func (s Spec) withDefaults() Spec {
	if s.Replicas <= 0 {
		s.Replicas = 16
	}
	if s.Trials <= 0 {
		s.Trials = 5
	}
	if s.Round <= 0 {
		s.Round = 2 * time.Millisecond
	}
	if s.Envelope.Levels <= 0 {
		s.Envelope.Levels = 32
	}
	if s.Envelope.Dilation <= 0 {
		s.Envelope.Dilation = 3
	}
	if s.Envelope.BandTolerance <= 0 {
		s.Envelope.BandTolerance = 0.2
	}
	return s
}

// TrialResult is the outcome of one real-mesh run.
type TrialResult struct {
	Completed bool
	Rounds    int
	Messages  int64
	Drops     int64
	// Violation is the envelope verdict ("" = inside).
	Violation string
}

// Report is the outcome of a full spec: the simulator-derived envelope
// and every trial's classification.
type Report struct {
	Name     string
	Envelope *envelope.Envelope
	Trials   []TrialResult
}

// Passed reports the spec verdict. Completion is a hard per-trial
// requirement: every trial must inform every node. The envelope
// classification is statistical, so one outlier trial per five is
// tolerated — a real fabric occasionally has a globally unlucky
// schedule, while a systematic disagreement makes most trials violate.
func (r Report) Passed() bool {
	if len(r.Trials) == 0 {
		return false
	}
	outliers := 0
	for _, t := range r.Trials {
		if !t.Completed {
			return false
		}
		if t.Violation != "" {
			outliers++
		}
	}
	return outliers <= len(r.Trials)/5
}

// String renders a one-spec summary line per trial.
func (r Report) String() string {
	out := fmt.Sprintf("%s: envelope from %d replicas (rounds [%d, %d], intra-spread %.3f)\n",
		r.Name, r.Envelope.Replicas, r.Envelope.RoundsLo, r.Envelope.RoundsHi, r.Envelope.DIntra)
	for i, t := range r.Trials {
		verdict := "inside"
		if !t.Completed {
			verdict = "INCOMPLETE"
		} else if t.Violation != "" {
			verdict = "OUTSIDE: " + t.Violation
		}
		out += fmt.Sprintf("  trial %d: rounds=%d messages=%d drops=%d %s\n", i, t.Rounds, t.Messages, t.Drops, verdict)
	}
	return out
}

// BuildSimEnvelope derives the spec's envelope from Replicas simulator
// runs with seeds Opts.Seed .. Opts.Seed+Replicas-1. Deterministic:
// the same spec always yields a bit-identical envelope.
func BuildSimEnvelope(spec Spec) (*envelope.Envelope, error) {
	spec = spec.withDefaults()
	curves := make([]curve.Curve, 0, spec.Replicas)
	for i := 0; i < spec.Replicas; i++ {
		opts := spec.Opts
		opts.CSR = spec.CSR
		opts.Seed = spec.Opts.Seed + uint64(i)
		res, err := gossip.Dispatch(spec.Driver, nil, opts)
		if err != nil {
			return nil, fmt.Errorf("netcheck: simulator replica %d: %w", i, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("netcheck: simulator replica %d did not complete (envelope needs completed replicas; raise MaxRounds)", i)
		}
		curves = append(curves, curve.FromInformedAt(res.InformedAt))
	}
	return envelope.Build(curves, spec.Envelope)
}

// Horizon is the real-run round budget derived from an envelope: the
// slowest simulated replica, dilated by the envelope's time-scale
// slack, doubled for fabric jitter, floored at 50 ticks.
func Horizon(e *envelope.Envelope) int {
	dil := e.Opts.Dilation
	if dil <= 0 {
		dil = 3
	}
	h := int(2 * dil * float64(e.RoundsHi))
	if h < 50 {
		h = 50
	}
	return h
}

// CheckResult classifies one real-mesh result against the envelope:
// completion first (the hard functional claim — every node informed),
// then the ICC-space envelope verdict. The same check applies whether
// the result came from one goroutine mesh or was assembled from a TCP
// fleet's per-process halves.
func CheckResult(e *envelope.Envelope, res gossip.NetResult) error {
	if !res.Completed {
		return fmt.Errorf("netcheck: real run incomplete (rounds=%d)", res.Rounds)
	}
	return e.Check(curve.FromInformedAt(res.InformedAt))
}

// RunChan executes the full spec on an in-process goroutine mesh:
// build the simulator envelope, run Trials real-mesh executions, and
// classify each. The report carries every trial; Passed() is the
// verdict.
func RunChan(spec Spec) (Report, error) {
	spec = spec.withDefaults()
	env, err := BuildSimEnvelope(spec)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Name: spec.Name, Envelope: env}
	for i := 0; i < spec.Trials; i++ {
		mesh := transport.NewChanMesh(spec.CSR.N(), 0)
		res, err := gossip.RunNet(gossip.NetConfig{
			Mesh:      mesh,
			CSR:       spec.CSR,
			Driver:    spec.Driver,
			Opts:      spec.Opts,
			Round:     spec.Round,
			MaxRounds: Horizon(env),
		})
		mesh.Close()
		if err != nil {
			return rep, fmt.Errorf("netcheck: trial %d: %w", i, err)
		}
		tr := TrialResult{
			Completed: res.Completed,
			Rounds:    res.Rounds,
			Messages:  res.Messages,
			Drops:     res.Drops,
		}
		if cerr := CheckResult(env, res); cerr != nil {
			tr.Violation = cerr.Error()
		}
		rep.Trials = append(rep.Trials, tr)
	}
	return rep, nil
}
