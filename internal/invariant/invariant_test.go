package invariant

import (
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
)

// TestInvariants is the cross-protocol harness gate: every registered
// driver × every suite family × {benign, lossy, churny}, each cell run
// serial and 8-way sharded. It is part of the tier-1 suite and of
// `make determinism`.
func TestInvariants(t *testing.T) {
	fams, err := Families(4242)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) < 4 {
		t.Fatalf("suite has %d families, the harness contract wants >= 4", len(fams))
	}
	drivers := gossip.Names()
	if len(drivers) != 10 {
		t.Fatalf("expected all 10 registered drivers, have %v", drivers)
	}
	for _, driver := range drivers {
		for _, fam := range fams {
			for _, sc := range Scenarios() {
				t.Run(driver+"/"+fam.Name+"/"+sc.Name, func(t *testing.T) {
					for _, v := range Check(driver, fam, sc, 4242) {
						t.Error(v)
					}
				})
			}
		}
	}
}

// TestTotalLossAccounting pins the payload-accounting invariant in its
// sharpest form: with loss=1 nothing is ever delivered, so the payload
// is zero, every completed exchange is dropped, and the broadcast
// cannot complete beyond the source.
func TestTotalLossAccounting(t *testing.T) {
	res, err := gossip.Dispatch("push-pull", graphgen.Clique(12, 1), gossip.DriverOptions{
		Source: 0, Seed: 7, MaxRounds: 256,
		ExecOptions: gossip.ExecOptions{Adversity: &adversity.Spec{Loss: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("broadcast completed with total loss")
	}
	if res.Delivered != 0 || res.RumorPayload != 0 {
		t.Fatalf("delivered %d, payload %d under total loss", res.Delivered, res.RumorPayload)
	}
	if res.Dropped == 0 || res.Dropped+res.Delivered > res.Exchanges {
		t.Fatalf("dropped %d of %d exchanges", res.Dropped, res.Exchanges)
	}
	informed := 0
	for _, at := range res.InformedAt {
		if at >= 0 {
			informed++
		}
	}
	if informed != 1 {
		t.Fatalf("%d nodes informed under total loss, want only the source", informed)
	}
}

// TestLossSlowsSpread sanity-checks the epidemic intuition the loss
// model exists for: the same seeded run takes at least as many rounds
// at 30% loss as at 0%.
func TestLossSlowsSpread(t *testing.T) {
	run := func(loss float64) int {
		var spec *adversity.Spec
		if loss > 0 {
			spec = &adversity.Spec{Loss: loss}
		}
		res, err := gossip.Dispatch("push-pull", graphgen.Clique(24, 1), gossip.DriverOptions{
			Source: 0, Seed: 11, MaxRounds: 1 << 14,
			ExecOptions: gossip.ExecOptions{Adversity: spec},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("loss=%v: incomplete", loss)
		}
		return res.Rounds
	}
	benign, lossy := run(0), run(0.3)
	if lossy < benign {
		t.Fatalf("30%% loss finished faster (%d) than benign (%d)", lossy, benign)
	}
}

// TestChurnRetentionVsAmnesia: with retention a rejoined node still
// counts its pre-leave knowledge; with amnesia it must re-learn. Both
// must complete (the engine re-wakes rejoined nodes), and the amnesic
// run can never finish first.
func TestChurnRetentionVsAmnesia(t *testing.T) {
	run := func(amnesia bool) int {
		spec := &adversity.Spec{Churn: []adversity.Churn{{Node: 5, Leave: 2, Rejoin: 40, Amnesia: amnesia}}}
		res, err := gossip.Dispatch("push-pull", graphgen.Path(8, 1), gossip.DriverOptions{
			Source: 0, Seed: 3, MaxRounds: 1 << 14,
			ExecOptions: gossip.ExecOptions{Adversity: spec},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("amnesia=%v: incomplete", amnesia)
		}
		return res.Rounds
	}
	retain, amnesic := run(false), run(true)
	if amnesic < retain {
		t.Fatalf("amnesia completed in %d rounds, before retention's %d", amnesic, retain)
	}
}
