// Package invariant is the cross-protocol invariant harness: it runs
// every registered gossip driver against every graph family in the
// suite under benign, lossy and churny network regimes, twice (serial
// and 8-way sharded), and checks the properties that must hold for
// every protocol regardless of its schedule:
//
//   - worker-count determinism: the workers=1 and workers=8 runs are
//     identical down to per-node informed times and final rumor counts;
//   - monotonic informed growth: in runs without amnesia, a node that
//     was ever informed still holds the watched rumor at the end;
//   - survivor-only completion: a completed broadcast has informed
//     every node that is alive when the run ends;
//   - payload accounting: only delivered (non-dropped) exchanges carry
//     payload — benign runs drop nothing, Delivered+Dropped never
//     exceeds Exchanges, and zero deliveries means zero payload;
//   - warm-fork equivalence: capturing an engine snapshot halfway
//     through the run and resuming it reproduces the cold run
//     bit-identically, at workers 1 and 8 (single-phase drivers; the
//     pipelines fall back to a cold replay, which must also agree);
//   - distributed equivalence: partitioning the run over 2 and 3
//     shards of the distributed exchanger reproduces the serial run
//     bit-identically (distributable drivers).
//
// The harness is a library so both the test suite (TestInvariants) and
// `make determinism` exercise it; violations carry enough context to
// reproduce a failing cell with one Dispatch call.
package invariant

import (
	"errors"
	"fmt"
	"reflect"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
)

// Family is one topology of the suite.
type Family struct {
	Name  string
	Graph *graph.Graph
}

// Families returns the graph suite: clique, path, slow-bridge dumbbell,
// Erdős–Rényi and a ring+matching expander (≥ 4 families, per the
// harness contract).
func Families(seed uint64) ([]Family, error) {
	rng := graphgen.NewRand(seed)
	er, err := graphgen.ErdosRenyi(16, 0.3, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 6, rng)
	csr, err := graphgen.RingMatchingExpanderCSR(16, 1, graphgen.NewRand(seed+1))
	if err != nil {
		return nil, err
	}
	return []Family{
		{"clique12", graphgen.Clique(12, 2)},
		{"path10", graphgen.Path(10, 1)},
		{"dumbbell6", graphgen.Dumbbell(6, 20)},
		{"er16", er},
		{"expander16", csr.Graph()},
	}, nil
}

// Scenario is one network-adversity regime. Build derives the fault
// schedule from the topology (flaps must name real edges), nil meaning
// benign.
type Scenario struct {
	Name  string
	Build func(g *graph.Graph) *adversity.Spec
}

// Scenarios returns the benign/lossy/churny triple of the harness.
// Node ids in the churny schedule stay below the smallest family size;
// the flap rides the first edge of node 0, which every connected
// topology has.
func Scenarios() []Scenario {
	return []Scenario{
		{"benign", func(*graph.Graph) *adversity.Spec { return nil }},
		{"lossy", func(*graph.Graph) *adversity.Spec {
			return &adversity.Spec{Loss: 0.15}
		}},
		{"churny", func(g *graph.Graph) *adversity.Spec {
			flapPeer := g.Neighbors(0)[0].ID
			return &adversity.Spec{
				Churn: []adversity.Churn{
					{Node: 1, Leave: 4, Rejoin: 12, Amnesia: true},
					{Node: 2, Leave: 6, Rejoin: adversity.Forever},
				},
				Crashes: []adversity.Crash{{Round: 8, Nodes: []graph.NodeID{3}}},
				Flaps:   []adversity.Flap{{U: 0, V: flapPeer, From: 3, To: 9}},
			}
		}},
	}
}

// Violation is one broken invariant, with the coordinates to replay it.
type Violation struct {
	Driver, Family, Scenario string
	// Rule names the invariant: determinism, distributed, warm-fork,
	// monotonic-informed, survivor-completion, accounting, run-error.
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s/%s: %s: %s", v.Driver, v.Family, v.Scenario, v.Rule, v.Detail)
}

// fingerprint is the observable outcome of one run, the unit of the
// worker-count determinism comparison. Everything a DriverResult
// exposes that is not a pointer into live engine state, plus the final
// per-node rumor counts when the single-phase world is available.
type fingerprint struct {
	Rounds      int
	Completed   bool
	Exchanges   int64
	Messages    int64
	Dropped     int64
	Delivered   int64
	Payload     int64
	Winner      string
	InformedAt  []int
	RumorCounts []int
}

func fingerprintOf(res gossip.DriverResult) fingerprint {
	fp := fingerprint{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Exchanges:  res.Exchanges,
		Messages:   res.Messages,
		Dropped:    res.Dropped,
		Delivered:  res.Delivered,
		Payload:    res.RumorPayload,
		Winner:     res.Winner,
		InformedAt: res.InformedAt,
	}
	if res.Sim != nil && res.Sim.World != nil {
		fp.RumorCounts = make([]int, len(res.Sim.World.Views))
		for u, nv := range res.Sim.World.Views {
			fp.RumorCounts[u] = nv.RumorCount()
		}
	}
	return fp
}

// MaxRounds bounds every harness run: generous for the small suite
// graphs, and the horizon stalled lossy runs terminate against.
const MaxRounds = 1 << 12

// Check runs one (driver, family, scenario) cell at workers 1 and 8 and
// returns every invariant violation.
func Check(driver string, fam Family, sc Scenario, seed uint64) []Violation {
	var out []Violation
	report := func(rule, format string, args ...any) {
		out = append(out, Violation{
			Driver: driver, Family: fam.Name, Scenario: sc.Name,
			Rule: rule, Detail: fmt.Sprintf(format, args...),
		})
	}
	spec := sc.Build(fam.Graph)
	run := func(workers int) (gossip.DriverResult, error) {
		return gossip.Dispatch(driver, fam.Graph, gossip.DriverOptions{
			Source:    0,
			Seed:      seed,
			MaxRounds: MaxRounds,
			ExecOptions: gossip.ExecOptions{
				Adversity: spec,
				Workers:   workers,
			},
		})
	}
	r1, err := run(1)
	if err != nil {
		report("run-error", "workers=1: %v", err)
		return out
	}
	r8, err := run(8)
	if err != nil {
		report("run-error", "workers=8: %v", err)
		return out
	}

	// Worker-count determinism: the sharded run must match the serial
	// run in every observable, including per-node informed times and
	// final rumor counts.
	fp1, fp8 := fingerprintOf(r1), fingerprintOf(r8)
	if !reflect.DeepEqual(fp1, fp8) {
		report("determinism", "workers=1 %+v vs workers=8 %+v", fp1, fp8)
	}

	// Distributed equivalence: the same cell partitioned over the
	// in-process shard exchanger must reproduce the serial run exactly —
	// the bit-identical guarantee behind gossipd's multi-worker mode,
	// checked here at the engine level for every distributable driver.
	if gossip.Distributable(driver) {
		for _, shards := range []int{2, 3} {
			rd, _, err := gossip.DispatchLocalSharded(driver, fam.Graph, gossip.DriverOptions{
				Source:    0,
				Seed:      seed,
				MaxRounds: MaxRounds,
				ExecOptions: gossip.ExecOptions{
					Adversity: spec,
					Workers:   1,
				},
			}, shards)
			if err != nil {
				report("distributed", "shards=%d: %v", shards, err)
				continue
			}
			if fpd := fingerprintOf(rd); !reflect.DeepEqual(fp1, fpd) {
				report("distributed", "shards=%d: serial %+v vs distributed %+v", shards, fp1, fpd)
			}
		}
	}

	// Warm-fork equivalence: a snapshot at the halfway barrier, resumed
	// under the identical options, must replay the cold run exactly — at
	// both worker counts. Pipelines have no single engine to freeze
	// (ErrNoWarmStart); for them the rule degrades to cold-replay
	// determinism, which the same comparison covers.
	for _, workers := range []int{1, 8} {
		cold := fp1
		if workers == 8 {
			cold = fp8
		}
		warm, err := warmReplay(driver, fam.Graph, spec, seed, workers, r1.Rounds/2)
		if err != nil {
			report("warm-fork", "workers=%d: %v", workers, err)
			continue
		}
		if !reflect.DeepEqual(warm, cold) {
			report("warm-fork", "workers=%d: warm %+v vs cold %+v", workers, warm, cold)
		}
	}

	// Payload accounting: drops carry nothing.
	if r1.Delivered+r1.Dropped > r1.Exchanges {
		report("accounting", "delivered %d + dropped %d > exchanges %d", r1.Delivered, r1.Dropped, r1.Exchanges)
	}
	if spec.Empty() && r1.Dropped != 0 {
		report("accounting", "benign run dropped %d exchanges", r1.Dropped)
	}
	if r1.Delivered == 0 && r1.RumorPayload != 0 {
		report("accounting", "payload %d with zero delivered exchanges", r1.RumorPayload)
	}
	if r1.Sim != nil && r1.Messages != 2*r1.Exchanges {
		report("accounting", "messages %d != 2×exchanges %d (no in-degree cap configured)", r1.Messages, r1.Exchanges)
	}

	if r1.Sim == nil || r1.Sim.World == nil {
		return out // pipeline drivers: no single final world to inspect
	}
	w := r1.Sim.World

	// Monotonic informed growth: without amnesia, once a node held the
	// watched rumor (InformedAt >= 0) it must still hold it at the end.
	if r1.InformedAt != nil && !spec.HasAmnesia() {
		for u, at := range r1.InformedAt {
			if at >= 0 && !w.Views[u].Knows(0) {
				report("monotonic-informed", "node %d informed at round %d no longer holds rumor 0", u, at)
			}
		}
	}

	// Survivor-only completion: a completed broadcast has informed every
	// survivor — every node the schedule never permanently removes,
	// including nodes that were temporarily churned out (they rejoin and
	// must not be left behind; the pipelines' goneForever semantics).
	if objectiveOf[driver] == objBroadcast && r1.Completed {
		for u := range w.Views {
			if !spec.NeverReturns(u) && !w.Views[u].Knows(0) {
				report("survivor-completion", "completed at round %d but surviving node %d is uninformed", r1.Rounds, u)
			}
		}
	}

	// Leader agreement safety: a completed election means every survivor
	// decided on the same leader, and that leader is itself a survivor —
	// the unique-leader invariant, judged through the LeaderReporter
	// facet over exactly the nodes StopLeaderStable quantifies.
	if objectiveOf[driver] == objLeader && r1.Completed {
		elected := -1
		for u := range w.Views {
			if spec.NeverReturns(u) {
				continue
			}
			lr, ok := w.Protos[u].(sim.LeaderReporter)
			if !ok {
				report("leader-agreement", "survivor %d has no LeaderReporter facet", u)
				continue
			}
			l, decided := lr.Leader()
			switch {
			case !decided:
				report("leader-agreement", "completed at round %d but survivor %d is undecided", r1.Rounds, u)
			case elected == -1:
				elected = l
			case l != elected:
				report("leader-agreement", "survivor %d decided on %d, others on %d", u, l, elected)
			}
		}
		if elected >= 0 && spec.NeverReturns(elected) {
			report("leader-agreement", "elected leader %d never returns under the schedule", elected)
		}
	}

	// Echo completion and no-phantom-ack: a completed wave means the
	// root heard every survivor, and — when no amnesia can wipe a node
	// after it acked — every ack the root holds is from a node that
	// heard the root's token (an exchange exporting a node's rumor
	// always imports the initiator's set, and only token-holders
	// initiate).
	if objectiveOf[driver] == objEcho {
		root := w.Views[0]
		if r1.Completed {
			for u := range w.Views {
				if !spec.NeverReturns(u) && !root.Knows(graph.NodeID(u)) {
					report("echo-completion", "completed at round %d but root lacks survivor %d's ack", r1.Rounds, u)
				}
			}
		}
		if !spec.HasAmnesia() {
			for u := 1; u < len(w.Views); u++ {
				if root.Knows(graph.NodeID(u)) && !w.Views[u].Knows(0) {
					report("echo-phantom-ack", "root holds node %d's ack but %d never heard the token", u, u)
				}
			}
		}
	}

	// Local-broadcast quiescence on a benign network really means local
	// broadcast: every node ends holding each graph neighbor's rumor.
	if objectiveOf[driver] == objLocal && spec.Empty() && r1.Completed {
		for u := range w.Views {
			for i := 0; i < w.Views[u].Degree(); i++ {
				if nb := w.Views[u].NeighborID(i); !w.Views[u].Knows(nb) {
					report("survivor-completion", "benign local broadcast completed but node %d misses neighbor %d's rumor", u, nb)
				}
			}
		}
	}
	return out
}

// warmReplay re-runs one harness cell through the warm-start path: fork
// the driver at atRound and resume with unchanged options. Drivers
// without snapshot support (the multi-phase pipelines) re-Dispatch cold
// instead — replay determinism is the strongest claim available there.
func warmReplay(driver string, g *graph.Graph, spec *adversity.Spec, seed uint64, workers, atRound int) (fingerprint, error) {
	opts := gossip.DriverOptions{
		Source:    0,
		Seed:      seed,
		MaxRounds: MaxRounds,
		ExecOptions: gossip.ExecOptions{
			Adversity: spec,
			Workers:   workers,
		},
	}
	w, err := gossip.Fork(driver, g, opts, atRound)
	if errors.Is(err, gossip.ErrNoWarmStart) {
		res, err := gossip.Dispatch(driver, g, opts)
		if err != nil {
			return fingerprint{}, err
		}
		return fingerprintOf(res), nil
	}
	if err != nil {
		return fingerprint{}, err
	}
	res, err := w.Resume(opts)
	if err != nil {
		return fingerprint{}, err
	}
	return fingerprintOf(res), nil
}

// Completion objectives per driver: broadcast drivers finish when every
// (alive) node holds the source rumor; local drivers (DTG, Superstep)
// finish at local-broadcast quiescence — every node heard each of its
// G_ℓ neighbors. rr finishes on budget exhaustion and the pipelines
// (auto, spanner, pattern) expose no single final world, so only the
// universal invariants apply to them.
const (
	objBroadcast = "broadcast"
	objLocal     = "local"
	objLeader    = "leader"
	objEcho      = "echo"
)

var objectiveOf = map[string]string{
	"push-pull": objBroadcast,
	"flood":     objBroadcast,
	"dtg":       objLocal,
	"superstep": objLocal,
	"election":  objLeader,
	"echo":      objEcho,
}

// CheckAll sweeps every registered driver × family × scenario cell.
func CheckAll(seed uint64) ([]Violation, error) {
	fams, err := Families(seed)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, driver := range gossip.Names() {
		for _, fam := range fams {
			for _, sc := range Scenarios() {
				out = append(out, Check(driver, fam, sc, seed)...)
			}
		}
	}
	return out, nil
}
