package estimate

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"gossip/internal/curve"
)

// synthCurve is a deterministic analytic stand-in for a simulation: the
// rumor spreads to n*(1-loss) nodes (never below 1), one change point
// every scale*(churn+1) rounds — enough structure that distinct
// candidates produce distinct curves.
func synthCurve(c Candidate, n int) curve.Curve {
	final := int(float64(n) * (1 - c.Loss))
	if final < 1 {
		final = 1
	}
	step := c.Scale * (c.Churn + 1)
	var out curve.Curve
	for i := 1; i <= final; i++ {
		out = append(out, curve.Point{Round: (i - 1) * step, Informed: float64(i)})
	}
	return out
}

func TestGridCandidatesOrderAndBounds(t *testing.T) {
	g := Grid{LossMax: 0.4, LossSteps: 3, ChurnMax: 4, ChurnSteps: 3, Scales: []int{1, 2}}
	cands := g.Candidates()
	if len(cands) != 2*3*3 {
		t.Fatalf("got %d candidates, want 18", len(cands))
	}
	if (cands[0] != Candidate{Scale: 1}) {
		t.Fatalf("first candidate %+v must be benign at scale 1", cands[0])
	}
	// Fixed enumeration order: scale-major, churn, loss.
	want := []Candidate{
		{0, 0, 1}, {0.2, 0, 1}, {0.4, 0, 1},
		{0, 2, 1}, {0.2, 2, 1}, {0.4, 2, 1},
		{0, 4, 1}, {0.2, 4, 1}, {0.4, 4, 1},
	}
	for i, w := range want {
		if math.Abs(cands[i].Loss-w.Loss) > 1e-12 || cands[i].Churn != w.Churn || cands[i].Scale != w.Scale {
			t.Fatalf("candidate %d = %+v, want %+v", i, cands[i], w)
		}
	}
	// Empty scales defaults to [1]; degenerate axes collapse to one value.
	if got := (Grid{LossSteps: 1, ChurnSteps: 1}).Candidates(); len(got) != 1 || got[0] != (Candidate{Scale: 1}) {
		t.Fatalf("degenerate grid candidates %+v", got)
	}
}

func TestDefaultGridScalesWithN(t *testing.T) {
	g := DefaultGrid(16)
	if g.ChurnMax != 6 || g.ChurnSteps != 4 {
		t.Fatalf("n=16 grid %+v", g)
	}
	if g = DefaultGrid(4); g.ChurnMax != 1 || g.ChurnSteps != 2 {
		t.Fatalf("n=4 grid %+v", g)
	}
	if n := len(DefaultGrid(16).Candidates()); n > 128 {
		t.Fatalf("default grid too large: %d", n)
	}
}

func TestCandidateSpec(t *testing.T) {
	if (Candidate{Scale: 2}).Spec(8, 0) != nil {
		t.Fatal("benign candidate must have a nil spec (scale is topological)")
	}
	s := Candidate{Loss: 0.2, Churn: 3}.Spec(8, 7)
	if s.Loss != 0.2 || len(s.Churn) != 3 {
		t.Fatalf("spec %+v", s)
	}
	// Nodes come from the top of the id space, skipping the protected
	// source (7 here), every interval [ChurnLeave, ChurnRejoin) amnesiac.
	for i, want := range []int{6, 5, 4} {
		ch := s.Churn[i]
		if int(ch.Node) != want || ch.Leave != ChurnLeave || ch.Rejoin != ChurnRejoin || !ch.Amnesia {
			t.Fatalf("churn %d = %+v, want node %d", i, ch, want)
		}
	}
	// The rendered spec round-trips through the fault-spec grammar.
	if str := s.String(); str == "" {
		t.Fatal("spec did not render")
	}
}

func TestFitRecoversPlantedCandidate(t *testing.T) {
	const n = 16
	truth := Candidate{Loss: 0.2, Churn: 2, Scale: 1}
	grid := Grid{LossMax: 0.4, LossSteps: 3, ChurnMax: 4, ChurnSteps: 3, Scales: []int{1}}
	observed := synthCurve(truth, n)
	var evals []Eval
	res, err := Fit(Config{
		Observed: observed,
		Grid:     grid,
		Refine:   2,
		EvalCold: func(c Candidate) (curve.Curve, error) { return synthCurve(c, n), nil },
		OnEval:   func(e Eval) { evals = append(evals, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != truth {
		t.Fatalf("best %+v, want planted %+v (coarse %+v)", res.Best, truth, res.Coarse)
	}
	if res.Score != 0 || res.CoarseScore != 0 {
		t.Fatalf("planted candidate must score 0, got %v / %v", res.Score, res.CoarseScore)
	}
	if res.Evaluated != len(evals) || res.Evaluated < len(grid.Candidates()) {
		t.Fatalf("evaluated %d, callbacks %d", res.Evaluated, len(evals))
	}
	if evals[0].Stage != "coarse" || evals[0].Candidate != (Candidate{Scale: 1}) {
		t.Fatalf("first eval %+v, want benign coarse", evals[0])
	}
	if !reflect.DeepEqual(res.BestCurve, observed) {
		t.Fatal("best curve is not the cold re-simulation of the winner")
	}
}

func TestFitTieBreaksBenignFirst(t *testing.T) {
	// Every candidate produces the identical curve: the fit must report
	// the benign lattice origin, not an arbitrary faulty tie.
	flat := curve.Curve{{Round: 0, Informed: 1}, {Round: 3, Informed: 8}}
	res, err := Fit(Config{
		Observed: flat,
		Grid:     Grid{LossMax: 0.4, LossSteps: 3, ChurnMax: 2, ChurnSteps: 2, Scales: []int{1, 2}},
		Refine:   1,
		EvalCold: func(Candidate) (curve.Curve, error) { return flat, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != (Candidate{Scale: 1}) {
		t.Fatalf("tie broke to %+v, want benign", res.Best)
	}
}

func TestFitWarmRefinementVerifiesCold(t *testing.T) {
	// A warm evaluator that lies (scores everything as a perfect match)
	// must not be able to displace the coarse winner: verification
	// re-simulates cold and keeps the incumbent only on a strict win.
	const n = 16
	truth := Candidate{Loss: 0.2, Churn: 0, Scale: 1}
	observed := synthCurve(truth, n)
	coldCalls := 0
	res, err := Fit(Config{
		Observed: observed,
		Grid:     Grid{LossMax: 0.4, LossSteps: 3, ChurnMax: 2, ChurnSteps: 3, Scales: []int{1}},
		Refine:   1,
		EvalCold: func(c Candidate) (curve.Curve, error) { coldCalls++; return synthCurve(c, n), nil },
		EvalWarm: func(Candidate) (curve.Curve, error) { return observed, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != truth || res.Score != 0 {
		t.Fatalf("lying warm evaluator displaced the winner: %+v score %v", res.Best, res.Score)
	}
	// The warm pass never hit the cold evaluator beyond grid + verify.
	if wantMax := 9 + 1; coldCalls > wantMax {
		t.Fatalf("%d cold calls, want at most %d", coldCalls, wantMax)
	}
}

func TestFitFailures(t *testing.T) {
	obs := curve.Curve{{Round: 0, Informed: 1}, {Round: 2, Informed: 4}}
	if _, err := Fit(Config{Grid: DefaultGrid(8), EvalCold: func(Candidate) (curve.Curve, error) { return obs, nil }}); err == nil {
		t.Fatal("empty observed curve accepted")
	}
	if _, err := Fit(Config{Observed: obs, Grid: DefaultGrid(8)}); err == nil {
		t.Fatal("nil EvalCold accepted")
	}
	// Every candidate failing deterministically is a deterministic error.
	boom := errors.New("boom")
	if _, err := Fit(Config{
		Observed: obs, Grid: DefaultGrid(8),
		EvalCold: func(Candidate) (curve.Curve, error) { return nil, boom },
	}); err == nil {
		t.Fatal("all-failed grid accepted")
	}
	// A batch error (transient abort) propagates verbatim.
	abort := errors.New("draining")
	if _, err := Fit(Config{
		Observed: obs, Grid: DefaultGrid(8),
		EvalCold: func(Candidate) (curve.Curve, error) { return obs, nil },
		Batch: func(string, []Candidate, func(Candidate) (curve.Curve, error)) ([]BatchOut, error) {
			return nil, abort
		},
	}); !errors.Is(err, abort) {
		t.Fatalf("batch abort not propagated: %v", err)
	}
}

func TestNeighborhoodClampsAndDedupes(t *testing.T) {
	g := Grid{LossMax: 0.4, LossSteps: 3, ChurnMax: 4, ChurnSteps: 3}
	// At the lattice origin the negative offsets clamp onto existing
	// points; every candidate must still be unique, incumbent first.
	neigh := neighborhood(Candidate{Scale: 1}, 0.1, 1, g)
	if neigh[0] != (Candidate{Scale: 1}) {
		t.Fatalf("incumbent not first: %+v", neigh[0])
	}
	seen := map[Candidate]bool{}
	for _, c := range neigh {
		if seen[c] {
			t.Fatalf("duplicate %+v", c)
		}
		seen[c] = true
		if c.Loss < 0 || c.Loss > g.LossMax || c.Churn < 0 || c.Churn > g.ChurnMax {
			t.Fatalf("unclamped %+v", c)
		}
	}
	if len(neigh) != 4 { // origin, +loss, +churn, +both
		t.Fatalf("origin neighborhood size %d, want 4: %+v", len(neigh), neigh)
	}
}
