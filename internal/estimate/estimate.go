// Package estimate solves the inverse problem of the simulator: given
// an observed cumulative informed-count curve, find the adversity
// parameters — uniform loss rate, churn intensity, latency scale (the
// conductance proxy) — under which the base protocol reproduces it.
//
// The search is a coarse-to-fine lattice walk scored by the ICC-space
// distance of package curve (incidence vs cumulative informed, after
// Lega, which removes time alignment): a cold grid pass over
// Grid.Candidates, then Refine halving passes around the incumbent that
// the caller may score with cheap warm-start continuations, then one
// cold re-simulation of the refined incumbent so the reported winner is
// always verified against the real (from-round-0) model. Every
// decision — candidate order, tie-breaking, incumbent updates — is a
// pure function of the evaluator outputs, so a deterministic evaluator
// makes the whole fit bit-identical at any worker count.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"gossip/internal/adversity"
	"gossip/internal/curve"
	"gossip/internal/graph"
)

// ChurnLeave and ChurnRejoin are the fixed leave/rejoin rounds of the
// churn interval every candidate's churned nodes share: out during
// [ChurnLeave, ChurnRejoin) with amnesia, so churn intensity is the one
// free parameter of the axis. ChurnLeave is also the natural warm-start
// fork round — candidates are indistinguishable before it except for
// loss, so a prefix forked there is reusable across the churn axis.
const (
	ChurnLeave  = 2
	ChurnRejoin = 10
)

// Candidate is one point of the parameter lattice.
type Candidate struct {
	// Loss is the uniform per-exchange loss probability.
	Loss float64
	// Churn is the churn intensity: how many nodes leave (with amnesia)
	// during [ChurnLeave, ChurnRejoin).
	Churn int
	// Scale multiplies every edge latency — the conductance proxy:
	// scaling latencies dilates mixing time without changing topology.
	Scale int
}

// Spec renders the candidate as the adversity schedule it parameterizes
// (Scale is applied to the topology by the caller, not here): churned
// nodes are taken from the top of the id space downward, skipping the
// protected node (the rumor source must survive or the curve dies with
// it). A benign candidate returns nil.
func (c Candidate) Spec(n int, protected graph.NodeID) *adversity.Spec {
	if c.Loss == 0 && c.Churn == 0 {
		return nil
	}
	s := &adversity.Spec{Loss: c.Loss}
	node := graph.NodeID(n - 1)
	for k := 0; k < c.Churn && node >= 0; k++ {
		if node == protected {
			node--
			if node < 0 {
				break
			}
		}
		s.Churn = append(s.Churn, adversity.Churn{
			Node: node, Leave: ChurnLeave, Rejoin: ChurnRejoin, Amnesia: true,
		})
		node--
	}
	return s
}

// Grid bounds the coarse lattice: LossSteps evenly spaced rates in
// [0, LossMax] × ChurnSteps evenly spaced intensities in [0, ChurnMax]
// × the listed latency scales.
type Grid struct {
	LossMax    float64
	LossSteps  int
	ChurnMax   int
	ChurnSteps int
	Scales     []int
}

// DefaultGrid sizes the lattice for an n-node graph: loss up to 0.4 in
// 5 steps, churn up to half the non-source nodes (capped at 6) in up to
// 4 steps, scales 1 and 2 — 40 candidates at most.
func DefaultGrid(n int) Grid {
	churnMax := (n - 1) / 2
	if churnMax > 6 {
		churnMax = 6
	}
	churnSteps := 4
	if churnSteps > churnMax+1 {
		churnSteps = churnMax + 1
	}
	return Grid{LossMax: 0.4, LossSteps: 5, ChurnMax: churnMax, ChurnSteps: churnSteps, Scales: []int{1, 2}}
}

// Candidates enumerates the lattice in a fixed order — scale-major,
// then churn, then loss, each axis ascending — so the benign candidate
// comes first and score ties break toward fewer faults.
func (g Grid) Candidates() []Candidate {
	scales := g.Scales
	if len(scales) == 0 {
		scales = []int{1}
	}
	out := make([]Candidate, 0, len(scales)*g.ChurnSteps*g.LossSteps)
	for _, sc := range scales {
		for ci := 0; ci < max(g.ChurnSteps, 1); ci++ {
			for li := 0; li < max(g.LossSteps, 1); li++ {
				out = append(out, Candidate{
					Loss:  axisFloat(li, g.LossSteps, g.LossMax),
					Churn: axisInt(ci, g.ChurnSteps, g.ChurnMax),
					Scale: sc,
				})
			}
		}
	}
	return out
}

func axisFloat(i, steps int, maxV float64) float64 {
	if steps <= 1 {
		return 0
	}
	return maxV * float64(i) / float64(steps-1)
}

func axisInt(i, steps, maxV int) int {
	if steps <= 1 {
		return 0
	}
	// Round to the nearest integer intensity.
	return (2*maxV*i + (steps - 1)) / (2 * (steps - 1))
}

// lossSpacing and churnSpacing are the coarse lattice cell sizes the
// refinement passes halve from.
func (g Grid) lossSpacing() float64 {
	if g.LossSteps <= 1 {
		return g.LossMax
	}
	return g.LossMax / float64(g.LossSteps-1)
}

func (g Grid) churnSpacing() int {
	if g.ChurnSteps <= 1 {
		return g.ChurnMax
	}
	return (g.ChurnMax + g.ChurnSteps - 2) / (g.ChurnSteps - 1)
}

// Eval is one scored candidate, in the deterministic order the fit
// evaluated it. Score is +Inf when the candidate's simulation failed
// (Err says why) or produced no curve.
type Eval struct {
	Stage     string
	Candidate Candidate
	Score     float64
	Err       string
}

// BatchOut is one candidate's evaluator outcome within a batch.
type BatchOut struct {
	Curve curve.Curve
	Err   error
}

// Config parameterizes one fit.
type Config struct {
	// Observed is the target curve (required, at least one point).
	Observed curve.Curve
	// Grid is the coarse lattice (required, at least one candidate).
	Grid Grid
	// Refine is how many halving refinement passes follow the coarse
	// grid (0 = none).
	Refine int
	// EvalCold simulates a candidate from round 0 (required). It must be
	// deterministic: the same candidate always yields the same curve.
	EvalCold func(Candidate) (curve.Curve, error)
	// EvalWarm scores refinement candidates; it may be a cheaper
	// warm-start continuation (deterministic, but allowed to differ from
	// EvalCold — the fit re-verifies cold before reporting). Nil falls
	// back to EvalCold.
	EvalWarm func(Candidate) (curve.Curve, error)
	// Batch evaluates candidates concurrently, returning outcomes in
	// index order; a non-nil error aborts the fit (transient failures
	// like shutdown). Nil evaluates serially. Per-candidate failures
	// belong in BatchOut.Err, not the batch error.
	Batch func(stage string, cands []Candidate, eval func(Candidate) (curve.Curve, error)) ([]BatchOut, error)
	// OnEval observes every scored candidate in deterministic order.
	OnEval func(Eval)
}

// Result is a completed fit. Score/BestCurve come from Best's cold
// (from-round-0) evaluation, never a warm continuation.
type Result struct {
	Best        Candidate
	Score       float64
	BestCurve   curve.Curve
	Coarse      Candidate
	CoarseScore float64
	Evaluated   int
}

// Fit runs the coarse-to-fine search. The returned error is either a
// batch abort (propagated verbatim) or the no-usable-candidate failure;
// both leave no Result.
func Fit(cfg Config) (*Result, error) {
	if len(cfg.Observed) == 0 {
		return nil, errors.New("estimate: empty observed curve")
	}
	if cfg.EvalCold == nil {
		return nil, errors.New("estimate: EvalCold is required")
	}
	cands := cfg.Grid.Candidates()
	batch := cfg.Batch
	if batch == nil {
		batch = serialBatch
	}
	evalWarm := cfg.EvalWarm
	if evalWarm == nil {
		evalWarm = cfg.EvalCold
	}

	evaluated := 0
	// score runs one batch and folds it into (scores, curves) in index
	// order; the OnEval callbacks fire here, serially.
	score := func(stage string, cs []Candidate, eval func(Candidate) (curve.Curve, error)) ([]float64, []curve.Curve, error) {
		outs, err := batch(stage, cs, eval)
		if err != nil {
			return nil, nil, err
		}
		scores := make([]float64, len(cs))
		curves := make([]curve.Curve, len(cs))
		for i := range cs {
			sc, errStr := math.Inf(1), ""
			if outs[i].Err != nil {
				errStr = outs[i].Err.Error()
			} else {
				sc = curve.ICCDistance(cfg.Observed, outs[i].Curve)
				curves[i] = outs[i].Curve
			}
			scores[i] = sc
			evaluated++
			if cfg.OnEval != nil {
				cfg.OnEval(Eval{Stage: stage, Candidate: cs[i], Score: sc, Err: errStr})
			}
		}
		return scores, curves, nil
	}

	coarseScores, coarseCurves, err := score("coarse", cands, cfg.EvalCold)
	if err != nil {
		return nil, err
	}
	bi := argmin(coarseScores)
	if bi < 0 || math.IsInf(coarseScores[bi], 1) {
		return nil, errors.New("estimate: no candidate produced a usable curve")
	}
	coarse, coarseScore, coarseCurve := cands[bi], coarseScores[bi], coarseCurves[bi]

	// Refinement: halve the lattice spacing around the incumbent each
	// pass, scoring the (at most 9) neighborhood candidates warm. The
	// incumbent moves on warm scores only — cold verification below has
	// the last word.
	incumbent := coarse
	for r := 1; r <= cfg.Refine; r++ {
		lStep := cfg.Grid.lossSpacing() / float64(int(1)<<r)
		cStep := cfg.Grid.churnSpacing() >> r
		if cfg.Grid.churnSpacing() > 0 && cStep < 1 {
			cStep = 1
		}
		neigh := neighborhood(incumbent, lStep, cStep, cfg.Grid)
		scores, _, err := score(fmt.Sprintf("refine-%d", r), neigh, evalWarm)
		if err != nil {
			return nil, err
		}
		if bj := argmin(scores); bj >= 0 && !math.IsInf(scores[bj], 1) {
			incumbent = neigh[bj]
		}
	}

	// Verify: the refined incumbent is re-simulated cold and only
	// replaces the coarse winner if it beats it in cold score — warm
	// continuations score the tail of the run, not the whole curve.
	best, bestScore, bestCurve := coarse, coarseScore, coarseCurve
	if incumbent != coarse {
		scores, curves, err := score("verify", []Candidate{incumbent}, cfg.EvalCold)
		if err != nil {
			return nil, err
		}
		if scores[0] < bestScore {
			best, bestScore, bestCurve = incumbent, scores[0], curves[0]
		}
	}
	return &Result{
		Best: best, Score: bestScore, BestCurve: bestCurve,
		Coarse: coarse, CoarseScore: coarseScore, Evaluated: evaluated,
	}, nil
}

// neighborhood is the ±1-step lattice box around c (same scale), axis
// values clamped to the grid bounds, deduplicated, the incumbent first.
func neighborhood(c Candidate, lStep float64, cStep int, g Grid) []Candidate {
	out := make([]Candidate, 0, 9)
	seen := map[Candidate]bool{}
	add := func(n Candidate) {
		if n.Loss < 0 {
			n.Loss = 0
		}
		if n.Loss > g.LossMax {
			n.Loss = g.LossMax
		}
		if n.Churn < 0 {
			n.Churn = 0
		}
		if n.Churn > g.ChurnMax {
			n.Churn = g.ChurnMax
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(c)
	for _, dl := range []float64{-lStep, 0, lStep} {
		for _, dc := range []int{-cStep, 0, cStep} {
			add(Candidate{Loss: c.Loss + dl, Churn: c.Churn + dc, Scale: c.Scale})
		}
	}
	return out
}

// argmin returns the lowest index attaining the minimum (-1 for an
// empty slice) — lowest index, so Candidates' benign-first order breaks
// ties toward fewer faults.
func argmin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x < xs[best] {
			best = i
		}
	}
	return best
}

func serialBatch(_ string, cands []Candidate, eval func(Candidate) (curve.Curve, error)) ([]BatchOut, error) {
	outs := make([]BatchOut, len(cands))
	for i, c := range cands {
		cv, err := eval(c)
		outs[i] = BatchOut{Curve: cv, Err: err}
	}
	return outs, nil
}
