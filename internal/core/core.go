// Package core is the top of the library: it combines the weighted-
// conductance analysis (Section 2) with the dissemination algorithms
// (Sections 4-6) behind a single API. Analyze profiles a latency graph
// and reports the paper's predicted bounds; Disseminate runs a chosen
// (or automatically chosen, per Theorem 31) dissemination algorithm.
package core

import (
	"fmt"
	"math"

	"gossip/internal/conductance"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Profile is the structural and conductance analysis of a latency graph.
type Profile struct {
	// N, M, MaxDegree, MaxLatency are basic structure.
	N, M, MaxDegree, MaxLatency int
	// Diameter is the weighted diameter D.
	Diameter int64
	// Conductance carries φ*, ℓ*, φavg, the φℓ map and L.
	Conductance conductance.Result
	// Bounds are the paper's predictions for this graph.
	Bounds Bounds
}

// Bounds collects the paper's round-complexity predictions.
type Bounds struct {
	// Lower is Ω(min(D+Δ, ℓ*/φ*)) — the Theorem 13 lower bound shape.
	Lower float64
	// PushPull is O((ℓ*/φ*)·ln n) — Theorem 29.
	PushPull float64
	// PushPullAvg is O((L/φavg)·ln n) — Corollary 30.
	PushPullAvg float64
	// SpannerKnown is O(D·log³ n) — Theorem 25.
	SpannerKnown float64
	// SpannerUnknown is O((D+Δ)·log³ n) — Section 5.2.
	SpannerUnknown float64
	// Pattern is O(D·log² n·log D) — Lemma 28.
	Pattern float64
	// Unified is O(min(SpannerUnknown, PushPull)) — Theorem 31.
	Unified float64
}

// Analyze profiles g: exact conductance for small graphs, candidate-cut
// estimation for larger ones.
func Analyze(g *graph.Graph) (*Profile, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	cond, err := conductance.Compute(g)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	p := &Profile{
		N:           g.N(),
		M:           g.M(),
		MaxDegree:   g.MaxDegree(),
		MaxLatency:  g.MaxLatency(),
		Diameter:    g.WeightedDiameter(),
		Conductance: cond,
	}
	p.Bounds = computeBounds(p)
	return p, nil
}

func computeBounds(p *Profile) Bounds {
	ln := math.Log(float64(p.N))
	log2 := math.Log2(float64(p.N))
	d := float64(p.Diameter)
	var b Bounds
	critical := math.Inf(1)
	if p.Conductance.PhiStar > 0 {
		critical = float64(p.Conductance.EllStar) / p.Conductance.PhiStar
	}
	b.Lower = math.Min(d+float64(p.MaxDegree), critical)
	b.PushPull = critical * ln
	if p.Conductance.PhiAvg > 0 {
		b.PushPullAvg = float64(p.Conductance.NonEmptyClasses) / p.Conductance.PhiAvg * ln
	} else {
		b.PushPullAvg = math.Inf(1)
	}
	b.SpannerKnown = d * log2 * log2 * log2
	b.SpannerUnknown = (d + float64(p.MaxDegree)) * log2 * log2 * log2
	if d > 1 {
		b.Pattern = d * log2 * log2 * math.Log2(d)
	} else {
		b.Pattern = log2 * log2
	}
	b.Unified = math.Min(b.SpannerUnknown, b.PushPull)
	return b
}

// Algorithm selects a dissemination strategy.
type Algorithm int

const (
	// Auto runs the Theorem 31 combination (push-pull and the spanner
	// algorithm side by side, reporting the faster arm).
	Auto Algorithm = iota + 1
	// PushPull is the random phone-call protocol.
	PushPull
	// Spanner is the DTG + Baswana-Sen + RR pipeline.
	Spanner
	// Pattern is the deterministic T(k) schedule.
	Pattern
	// Flood is the push-only baseline.
	Flood
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case PushPull:
		return "push-pull"
	case Spanner:
		return "spanner"
	case Pattern:
		return "pattern"
	case Flood:
		return "flood"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options configures Disseminate.
type Options struct {
	// Algorithm defaults to Auto.
	Algorithm Algorithm
	// Source is the rumor source (one-to-all protocols).
	Source graph.NodeID
	// KnownLatencies selects the Section 4 model.
	KnownLatencies bool
	// D, when positive and known, skips guess-and-double for the
	// spanner/pattern pipelines.
	D         int
	Seed      uint64
	MaxRounds int
	// CrashAt injects fail-stop crashes (see sim.Config.CrashAt);
	// completion is judged over survivors.
	CrashAt []int
	// FaultTolerant switches the spanner pipeline to the Superstep
	// primitive with timeouts (the Section 7 extension). Only meaningful
	// for Spanner and Auto.
	FaultTolerant bool
}

// Outcome reports a dissemination run.
type Outcome struct {
	// Algorithm is the strategy that produced Rounds (for Auto, the
	// winning arm).
	Algorithm Algorithm
	// Rounds until dissemination completed (-1 if it did not).
	Rounds    int
	Completed bool
	// Exchanges counts initiated exchanges.
	Exchanges int64
}

// Disseminate runs the selected dissemination algorithm on g.
func Disseminate(g *graph.Graph, opts Options) (Outcome, error) {
	if opts.Algorithm == 0 {
		opts.Algorithm = Auto
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = sim.DefaultMaxRounds
	}
	switch opts.Algorithm {
	case PushPull:
		var res sim.Result
		var err error
		if opts.CrashAt != nil {
			res, err = gossip.RunPushPullWithCrashes(g, opts.Source, opts.CrashAt, opts.Seed, opts.MaxRounds)
		} else {
			res, err = gossip.RunPushPull(g, opts.Source, opts.Seed, opts.MaxRounds)
		}
		if err != nil {
			return Outcome{}, err
		}
		return fromSim(PushPull, res), nil
	case Flood:
		res, err := gossip.RunFlood(g, opts.Source, true, opts.Seed, opts.MaxRounds)
		if err != nil {
			return Outcome{}, err
		}
		return fromSim(Flood, res), nil
	case Spanner:
		spOpts := gossip.SpannerOptions{
			D:              opts.D,
			KnownLatencies: opts.KnownLatencies,
			Seed:           opts.Seed,
			MaxPhaseRounds: opts.MaxRounds,
			CrashAt:        opts.CrashAt,
		}
		if opts.FaultTolerant {
			spOpts.UseSuperstep = true
			spOpts.LBTimeout = defaultLBTimeout(g)
		}
		res, err := gossip.SpannerBroadcast(g, spOpts)
		if err != nil {
			return Outcome{}, err
		}
		return fromBroadcast(Spanner, res), nil
	case Pattern:
		res, err := gossip.PatternBroadcast(g, gossip.PatternOptions{
			D:              opts.D,
			Seed:           opts.Seed,
			MaxPhaseRounds: opts.MaxRounds,
		})
		if err != nil {
			return Outcome{}, err
		}
		return fromBroadcast(Pattern, res), nil
	case Auto:
		res, err := gossip.Unified(g, gossip.UnifiedOptions{
			Source:         opts.Source,
			KnownLatencies: opts.KnownLatencies,
			D:              opts.D,
			Seed:           opts.Seed,
			MaxRounds:      opts.MaxRounds,
		})
		if err != nil {
			return Outcome{}, err
		}
		out := Outcome{
			Algorithm: PushPull,
			Rounds:    res.Rounds,
			Completed: res.Rounds >= 0,
			Exchanges: res.PushPull.Exchanges + res.Spanner.Exchanges,
		}
		if res.Winner == "spanner" {
			out.Algorithm = Spanner
		}
		if !out.Completed {
			out.Rounds = -1
		}
		return out, nil
	default:
		return Outcome{}, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
}

// defaultLBTimeout picks a timeout safely above any single round trip:
// twice the largest edge latency plus slack.
func defaultLBTimeout(g *graph.Graph) int {
	return 2*g.MaxLatency() + 4
}

func fromSim(a Algorithm, res sim.Result) Outcome {
	out := Outcome{Algorithm: a, Rounds: res.Rounds, Completed: res.Completed, Exchanges: res.Exchanges}
	if !res.Completed {
		out.Rounds = -1
	}
	return out
}

func fromBroadcast(a Algorithm, res gossip.BroadcastResult) Outcome {
	out := Outcome{Algorithm: a, Rounds: res.Rounds, Completed: res.Completed, Exchanges: res.Exchanges}
	if !res.Completed {
		out.Rounds = -1
	}
	return out
}
