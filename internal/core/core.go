// Package core is the top of the library: it combines the weighted-
// conductance analysis (Section 2) with the dissemination algorithms
// (Sections 4-6) behind a single API. Analyze profiles a latency graph
// and reports the paper's predicted bounds; Disseminate runs a chosen
// (or automatically chosen, per Theorem 31) dissemination algorithm.
package core

import (
	"fmt"
	"math"
	"strings"

	"gossip/internal/adversity"
	"gossip/internal/conductance"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Profile is the structural and conductance analysis of a latency graph.
type Profile struct {
	// N, M, MaxDegree, MaxLatency are basic structure.
	N, M, MaxDegree, MaxLatency int
	// Diameter is the weighted diameter D.
	Diameter int64
	// Conductance carries φ*, ℓ*, φavg, the φℓ map and L.
	Conductance conductance.Result
	// Bounds are the paper's predictions for this graph.
	Bounds Bounds
}

// Bounds collects the paper's round-complexity predictions.
type Bounds struct {
	// Lower is Ω(min(D+Δ, ℓ*/φ*)) — the Theorem 13 lower bound shape.
	Lower float64
	// PushPull is O((ℓ*/φ*)·ln n) — Theorem 29.
	PushPull float64
	// PushPullAvg is O((L/φavg)·ln n) — Corollary 30.
	PushPullAvg float64
	// SpannerKnown is O(D·log³ n) — Theorem 25.
	SpannerKnown float64
	// SpannerUnknown is O((D+Δ)·log³ n) — Section 5.2.
	SpannerUnknown float64
	// Pattern is O(D·log² n·log D) — Lemma 28.
	Pattern float64
	// Unified is O(min(SpannerUnknown, PushPull)) — Theorem 31.
	Unified float64
}

// Analyze profiles g: exact conductance for small graphs, candidate-cut
// estimation for larger ones.
func Analyze(g *graph.Graph) (*Profile, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	cond, err := conductance.Compute(g)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	p := &Profile{
		N:           g.N(),
		M:           g.M(),
		MaxDegree:   g.MaxDegree(),
		MaxLatency:  g.MaxLatency(),
		Diameter:    g.WeightedDiameter(),
		Conductance: cond,
	}
	p.Bounds = computeBounds(p)
	return p, nil
}

func computeBounds(p *Profile) Bounds {
	ln := math.Log(float64(p.N))
	log2 := math.Log2(float64(p.N))
	d := float64(p.Diameter)
	var b Bounds
	critical := math.Inf(1)
	if p.Conductance.PhiStar > 0 {
		critical = float64(p.Conductance.EllStar) / p.Conductance.PhiStar
	}
	b.Lower = math.Min(d+float64(p.MaxDegree), critical)
	b.PushPull = critical * ln
	if p.Conductance.PhiAvg > 0 {
		b.PushPullAvg = float64(p.Conductance.NonEmptyClasses) / p.Conductance.PhiAvg * ln
	} else {
		b.PushPullAvg = math.Inf(1)
	}
	b.SpannerKnown = d * log2 * log2 * log2
	b.SpannerUnknown = (d + float64(p.MaxDegree)) * log2 * log2 * log2
	if d > 1 {
		b.Pattern = d * log2 * log2 * math.Log2(d)
	} else {
		b.Pattern = log2 * log2
	}
	b.Unified = math.Min(b.SpannerUnknown, b.PushPull)
	return b
}

// Algorithm names a dissemination strategy. It is a registry key: any
// driver registered in internal/gossip is a valid value, so the list
// below is the stable core surface, not an exhaustive enum.
type Algorithm string

const (
	// Auto runs the Theorem 31 combination (push-pull and the spanner
	// algorithm side by side, reporting the faster arm).
	Auto Algorithm = "auto"
	// PushPull is the random phone-call protocol.
	PushPull Algorithm = "push-pull"
	// Spanner is the DTG + Baswana-Sen + RR pipeline.
	Spanner Algorithm = "spanner"
	// Pattern is the deterministic T(k) schedule.
	Pattern Algorithm = "pattern"
	// Flood is the push-only baseline.
	Flood Algorithm = "flood"
)

// String names the algorithm; the zero value reads as the Auto default.
func (a Algorithm) String() string {
	if a == "" {
		return string(Auto)
	}
	return string(a)
}

// ParseAlgorithm resolves a driver name or alias to its canonical
// Algorithm, validating it against the registry.
func ParseAlgorithm(name string) (Algorithm, error) {
	d, ok := gossip.Lookup(name)
	if !ok {
		return "", fmt.Errorf("core: unknown algorithm %q (have %s)", name, strings.Join(gossip.Names(), "|"))
	}
	return Algorithm(d.Name), nil
}

// Algorithms lists the registered driver names Disseminate accepts.
func Algorithms() []string { return gossip.Names() }

// Options configures Disseminate.
type Options struct {
	// Algorithm defaults to Auto.
	Algorithm Algorithm
	// Source is the rumor source (one-to-all protocols).
	Source graph.NodeID
	// KnownLatencies selects the Section 4 model.
	KnownLatencies bool
	// D, when positive and known, skips guess-and-double for the
	// spanner/pattern pipelines.
	D         int
	Seed      uint64
	MaxRounds int
	// Crashes is the fail-stop schedule: batches of nodes crashing at
	// given rounds. Completion is judged over survivors.
	Crashes []adversity.Crash
	// Adversity attaches a full declarative fault schedule — message
	// loss, churn, link flaps and crash batches (see package adversity).
	// Every algorithm accepts it; multi-phase pipelines rebase it
	// between phases.
	Adversity *adversity.Spec
	// FaultTolerant switches the spanner pipeline to the Superstep
	// primitive with timeouts (the Section 7 extension). Only meaningful
	// for Spanner and Auto.
	FaultTolerant bool
	// Workers shards intra-round simulation across goroutines (see
	// sim.Config.Workers). Results are bit-identical for any value; 0 or
	// 1 runs serial.
	Workers int
}

// Outcome reports a dissemination run.
type Outcome struct {
	// Algorithm is the strategy that produced Rounds (for Auto, the
	// winning arm).
	Algorithm Algorithm
	// Rounds until dissemination completed (-1 if it did not).
	Rounds    int
	Completed bool
	// Exchanges counts initiated exchanges.
	Exchanges int64
}

// Disseminate runs the selected dissemination algorithm on g by
// dispatching to the internal/gossip driver registry — the same code path
// the experiment harness and the CLIs use.
func Disseminate(g *graph.Graph, opts Options) (Outcome, error) {
	name, err := ParseAlgorithm(opts.Algorithm.String())
	if err != nil {
		return Outcome{}, err
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = sim.DefaultMaxRounds
	}
	crashAt, err := adversity.CrashAtVector(g.N(), opts.Crashes)
	if err != nil {
		return Outcome{}, fmt.Errorf("core: %w", err)
	}
	// A node failed by both the crash schedule and the adversity spec is
	// the same double-specification CrashAtVector rejects within one
	// schedule: refuse it rather than letting the earlier failure
	// silently shadow the other.
	if crashAt != nil && opts.Adversity.HasFailures() {
		for u, r := range crashAt {
			if r >= 0 && opts.Adversity.Fails(u) {
				return Outcome{}, fmt.Errorf("core: node %d is failed by both the crash schedule and the Adversity spec", u)
			}
		}
	}
	res, err := gossip.Dispatch(string(name), g, gossip.DriverOptions{
		Source:         opts.Source,
		KnownLatencies: opts.KnownLatencies,
		D:              opts.D,
		Seed:           opts.Seed,
		MaxRounds:      opts.MaxRounds,
		CrashAt:        crashAt,
		FaultTolerant:  opts.FaultTolerant,
		ExecOptions: gossip.ExecOptions{
			Adversity: opts.Adversity,
			Workers:   opts.Workers,
		},
	})
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Algorithm: name,
		Rounds:    res.Rounds,
		Completed: res.Completed,
		Exchanges: res.Exchanges,
	}
	switch res.Winner {
	case "spanner":
		out.Algorithm = Spanner
	case "push-pull", "none":
		out.Algorithm = PushPull
	}
	if !out.Completed {
		out.Rounds = -1
	}
	return out, nil
}
