package core

import (
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graphgen"
)

func TestDisseminateWithCrashes(t *testing.T) {
	g := graphgen.Clique(12, 1)
	out, err := Disseminate(g, Options{
		Algorithm: PushPull, Source: 0, Seed: 1,
		Crashes: []adversity.Crash{{Round: 2, Nodes: []int{3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivor dissemination incomplete: %+v", out)
	}
}

func TestDisseminateFaultTolerantSpanner(t *testing.T) {
	g := graphgen.Clique(12, 2)
	out, err := Disseminate(g, Options{
		Algorithm: Spanner, KnownLatencies: true, Seed: 2,
		Crashes:       []adversity.Crash{{Round: 5, Nodes: []int{1}}},
		FaultTolerant: true, MaxRounds: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("fault-tolerant spanner incomplete: %+v", out)
	}
}

// TestDisseminateCrashSchedule covers the crash-batch field and its
// guard: a node failed by both a crash schedule and the Adversity spec
// is rejected instead of silently letting the earlier failure win.
func TestDisseminateCrashSchedule(t *testing.T) {
	g := graphgen.Clique(12, 1)
	out, err := Disseminate(g, Options{
		Algorithm: PushPull, Seed: 5, MaxRounds: 1 << 14,
		Crashes: []adversity.Crash{{Round: 2, Nodes: []int{4, 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivors not informed: %+v", out)
	}
	if _, err := Disseminate(g, Options{
		Algorithm: PushPull,
		Crashes:   []adversity.Crash{{Round: 2, Nodes: []int{4}}},
		Adversity: &adversity.Spec{Churn: []adversity.Churn{{Node: 4, Leave: 5, Rejoin: 9}}},
	}); err == nil {
		t.Fatal("node failed by both Crashes and Adversity accepted")
	}
	// Disjoint node sets across the two mechanisms are fine.
	if _, err := Disseminate(g, Options{
		Algorithm: PushPull, Seed: 5, MaxRounds: 1 << 14,
		Crashes:   []adversity.Crash{{Round: 2, Nodes: []int{4}}},
		Adversity: &adversity.Spec{Loss: 0.05, Churn: []adversity.Churn{{Node: 5, Leave: 3, Rejoin: 9}}},
	}); err != nil {
		t.Fatal(err)
	}
}
