package core

import (
	"testing"

	"gossip/internal/graphgen"
)

func TestDisseminateWithCrashes(t *testing.T) {
	g := graphgen.Clique(12, 1)
	crashAt := make([]int, 12)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[3] = 2
	out, err := Disseminate(g, Options{
		Algorithm: PushPull, Source: 0, Seed: 1, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivor dissemination incomplete: %+v", out)
	}
}

func TestDisseminateFaultTolerantSpanner(t *testing.T) {
	g := graphgen.Clique(12, 2)
	crashAt := make([]int, 12)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[1] = 5
	out, err := Disseminate(g, Options{
		Algorithm: Spanner, KnownLatencies: true, Seed: 2,
		CrashAt: crashAt, FaultTolerant: true, MaxRounds: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("fault-tolerant spanner incomplete: %+v", out)
	}
}
