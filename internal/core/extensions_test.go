package core

import (
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graphgen"
)

func TestDisseminateWithCrashes(t *testing.T) {
	g := graphgen.Clique(12, 1)
	crashAt := make([]int, 12)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[3] = 2
	out, err := Disseminate(g, Options{
		Algorithm: PushPull, Source: 0, Seed: 1, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivor dissemination incomplete: %+v", out)
	}
}

func TestDisseminateFaultTolerantSpanner(t *testing.T) {
	g := graphgen.Clique(12, 2)
	crashAt := make([]int, 12)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[1] = 5
	out, err := Disseminate(g, Options{
		Algorithm: Spanner, KnownLatencies: true, Seed: 2,
		CrashAt: crashAt, FaultTolerant: true, MaxRounds: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("fault-tolerant spanner incomplete: %+v", out)
	}
}

// TestDisseminateCrashSchedule covers the generalized crash-batch field
// and its guards: batches behave like the deprecated per-node vector,
// Crashes+CrashAt is rejected, and a node failed by both a crash
// schedule and the Adversity spec is rejected instead of silently
// letting the earlier failure win.
func TestDisseminateCrashSchedule(t *testing.T) {
	g := graphgen.Clique(12, 1)
	out, err := Disseminate(g, Options{
		Algorithm: PushPull, Seed: 5, MaxRounds: 1 << 14,
		Crashes: []adversity.Crash{{Round: 2, Nodes: []int{4, 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("survivors not informed: %+v", out)
	}
	crashAt := make([]int, g.N())
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[4] = 2
	if _, err := Disseminate(g, Options{
		Algorithm: PushPull, CrashAt: crashAt,
		Crashes: []adversity.Crash{{Round: 2, Nodes: []int{5}}},
	}); err == nil {
		t.Fatal("Crashes+CrashAt accepted")
	}
	if _, err := Disseminate(g, Options{
		Algorithm: PushPull,
		Crashes:   []adversity.Crash{{Round: 2, Nodes: []int{4}}},
		Adversity: &adversity.Spec{Churn: []adversity.Churn{{Node: 4, Leave: 5, Rejoin: 9}}},
	}); err == nil {
		t.Fatal("node failed by both Crashes and Adversity accepted")
	}
	// Disjoint node sets across the two mechanisms are fine.
	if _, err := Disseminate(g, Options{
		Algorithm: PushPull, Seed: 5, MaxRounds: 1 << 14,
		Crashes:   []adversity.Crash{{Round: 2, Nodes: []int{4}}},
		Adversity: &adversity.Spec{Loss: 0.05, Churn: []adversity.Churn{{Node: 5, Leave: 3, Rejoin: 9}}},
	}); err != nil {
		t.Fatal(err)
	}
}
