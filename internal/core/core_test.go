package core

import (
	"math"
	"testing"

	"gossip/internal/graphgen"
)

func TestAnalyzeClique(t *testing.T) {
	g := graphgen.Clique(10, 1)
	p, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 10 || p.M != 45 || p.MaxDegree != 9 || p.Diameter != 1 {
		t.Fatalf("profile basics wrong: %+v", p)
	}
	if p.Conductance.EllStar != 1 {
		t.Fatalf("ℓ* = %d", p.Conductance.EllStar)
	}
	if p.Bounds.PushPull <= 0 || math.IsInf(p.Bounds.PushPull, 1) {
		t.Fatalf("push-pull bound = %v", p.Bounds.PushPull)
	}
	if p.Bounds.Lower > p.Bounds.PushPull {
		t.Fatalf("lower bound %v above push-pull upper %v on a clique", p.Bounds.Lower, p.Bounds.PushPull)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	g := graphgen.Path(3, 1)
	sub := g.SubgraphMaxLatency(0) // edgeless, disconnected
	if _, err := Analyze(sub); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestDisseminateAlgorithms(t *testing.T) {
	g := graphgen.Grid(4, 4, 2)
	algos := []Algorithm{PushPull, Spanner, Pattern, Flood, Auto}
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			out, err := Disseminate(g, Options{
				Algorithm:      a,
				Source:         0,
				KnownLatencies: true,
				Seed:           1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Completed {
				t.Fatalf("%v incomplete: %+v", a, out)
			}
			if out.Rounds <= 0 {
				t.Fatalf("%v rounds = %d", a, out.Rounds)
			}
		})
	}
}

func TestDisseminateDefaultsToAuto(t *testing.T) {
	g := graphgen.Clique(8, 1)
	out, err := Disseminate(g, Options{Source: 0, KnownLatencies: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("auto dissemination incomplete")
	}
	if out.Algorithm != PushPull && out.Algorithm != Spanner {
		t.Fatalf("auto winner = %v", out.Algorithm)
	}
}

func TestDisseminateUnknownAlgorithm(t *testing.T) {
	g := graphgen.Clique(4, 1)
	if _, err := Disseminate(g, Options{Algorithm: Algorithm("no-such-driver")}); err == nil {
		t.Fatal("expected error")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Auto: "auto", PushPull: "push-pull", Spanner: "spanner",
		Pattern: "pattern", Flood: "flood", Algorithm(""): "auto",
	}
	for a, want := range names {
		if got := a.String(); got != want {
			t.Fatalf("String(%q) = %q, want %q", string(a), got, want)
		}
	}
}

func TestParseAlgorithmAliases(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"pushpull": PushPull, "PUSH-PULL": PushPull, "unified": Auto,
		"dtg": Algorithm("dtg"), "rr": Algorithm("rr"),
	} {
		got, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseAlgorithm(%q) = %q, want %q", name, got, want)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("expected error for unregistered name")
	}
}

func TestBoundsOrdering(t *testing.T) {
	// On any graph, Unified <= PushPull and Unified <= SpannerUnknown.
	rng := graphgen.NewRand(9)
	g, err := graphgen.ErdosRenyi(14, 0.4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 12, rng)
	p, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bounds.Unified > p.Bounds.PushPull+1e-9 || p.Bounds.Unified > p.Bounds.SpannerUnknown+1e-9 {
		t.Fatalf("unified bound not the min: %+v", p.Bounds)
	}
	if p.Bounds.SpannerKnown > p.Bounds.SpannerUnknown+1e-9 {
		t.Fatal("known-latency bound above unknown-latency bound")
	}
}
