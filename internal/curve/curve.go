// Package curve is the one informed-count curve derivation shared by the
// gossipd service layer and the parameter estimator: from a simulation's
// InformedAt vector it derives the cumulative informed-vs-round curve at
// full resolution, downsamples it for streaming, and transforms it into
// ICC space (incidence vs cumulative informed, after Lega's "Parameter
// Estimation from ICC curves") where two runs can be compared without
// aligning their time axes.
//
// Everything here is a pure function evaluated in a fixed order, so the
// same inputs yield bit-identical outputs at any worker count — the
// service-layer determinism contract extends through the estimator.
package curve

import "math"

// Point is one change point of the cumulative informed curve: Informed
// nodes first held the watched rumor at or before Round. Informed is a
// float because observed curves submitted for estimation may carry
// averaged (fractional) counts; curves derived from a simulation are
// integral.
type Point struct {
	Round    int
	Informed float64
}

// Curve is a cumulative informed-count curve: rounds strictly
// increasing, counts non-decreasing.
type Curve []Point

// FromInformedAt derives the full-resolution curve from a result's
// InformedAt vector (first round each node held the watched rumor; -1 =
// never). Nil or all-negative input — the multi-phase pipelines, which
// have no single watched rumor — yields a nil curve.
func FromInformedAt(informedAt []int) Curve {
	if len(informedAt) == 0 {
		return nil
	}
	// gains[r] = nodes first informed at round r. Rounds are bounded by
	// the final simulated round, so a dense count-then-scan stays linear
	// without sorting; the map variant this replaces sorted per call.
	maxRound := -1
	for _, r := range informedAt {
		if r > maxRound {
			maxRound = r
		}
	}
	if maxRound < 0 {
		return nil
	}
	gains := make([]int, maxRound+1)
	points := 0
	for _, r := range informedAt {
		if r < 0 {
			continue
		}
		if gains[r] == 0 {
			points++
		}
		gains[r]++
	}
	c := make(Curve, 0, points)
	informed := 0
	for r, g := range gains {
		if g == 0 {
			continue
		}
		informed += g
		c = append(c, Point{Round: r, Informed: float64(informed)})
	}
	return c
}

// Sample downsamples the curve to at most max points, evenly over the
// change-point index with the first and last always kept — the shape the
// service streams as progress events. max < 2 or a curve already within
// the budget returns the curve unchanged.
func (c Curve) Sample(max int) Curve {
	if max < 2 || len(c) <= max {
		return c
	}
	sampled := make(Curve, 0, max)
	for i := 0; i < max; i++ {
		sampled = append(sampled, c[i*(len(c)-1)/(max-1)])
	}
	return sampled
}

// Final is the curve's last cumulative count (0 for an empty curve).
func (c Curve) Final() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].Informed
}

// FinalRound is the curve's last change-point round (-1 for an empty
// curve).
func (c Curve) FinalRound() int {
	if len(c) == 0 {
		return -1
	}
	return c[len(c)-1].Round
}

// iccGrid is the number of cumulative levels the ICC distance is
// evaluated at. The grid spans the observed curve's cumulative range, so
// resolution is relative, not absolute.
const iccGrid = 64

// incidenceAt evaluates the curve's ICC transform at a cumulative level:
// the per-round incidence dI/dt of the segment whose cumulative interval
// (Informed[i-1], Informed[i]] contains the level, and 0 outside the
// curve's range (before the first point or past the plateau). The
// transform is piecewise constant, which keeps it exact on the change
// points the engine actually produces.
func (c Curve) incidenceAt(level float64) float64 {
	if len(c) < 2 || level <= c[0].Informed || level > c[len(c)-1].Informed {
		return 0
	}
	// Binary search for the first point with Informed >= level; its
	// segment covers the level.
	lo, hi := 1, len(c)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid].Informed < level {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	dI := c[lo].Informed - c[lo-1].Informed
	dR := c[lo].Round - c[lo-1].Round
	if dR <= 0 || dI <= 0 {
		return 0
	}
	return dI / float64(dR)
}

// IncidenceAt exposes the ICC transform at one cumulative level — the
// evaluation primitive consumers that build statistics over ICC space
// (the spread-curve envelopes of package envelope) share with
// ICCDistance, so "inside the envelope" and "close in ICC distance"
// mean the same transform.
func (c Curve) IncidenceAt(level float64) float64 { return c.incidenceAt(level) }

// ICCDistance scores a candidate curve against an observed one in ICC
// space: the RMS gap between the two incidence profiles over iccGrid
// cumulative levels spanning the observed range, plus the absolute
// final-size mismatch. Comparing in (cumulative, incidence) coordinates
// removes time alignment — two runs that spread through the same states
// at different speeds per Lega score close — while the final-size term
// penalizes candidates that stall below the observed plateau even where
// their incidence profiles agree. An empty observed curve against an
// empty candidate is 0; against a non-empty one, +Inf.
func ICCDistance(observed, candidate Curve) float64 {
	if len(observed) == 0 || len(candidate) == 0 {
		if len(observed) == len(candidate) {
			return 0
		}
		return math.Inf(1)
	}
	lo := observed[0].Informed
	hi := observed[len(observed)-1].Informed
	if hi <= lo {
		// Degenerate observed curve (a single level): only size remains.
		return math.Abs(candidate.Final() - hi)
	}
	var sum float64
	for k := 0; k < iccGrid; k++ {
		level := lo + (hi-lo)*float64(k)/float64(iccGrid-1)
		d := observed.incidenceAt(level) - candidate.incidenceAt(level)
		sum += d * d
	}
	return math.Sqrt(sum/iccGrid) + math.Abs(candidate.Final()-observed.Final())
}
