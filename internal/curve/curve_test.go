package curve

import (
	"math"
	"reflect"
	"testing"
)

func TestFromInformedAt(t *testing.T) {
	cases := []struct {
		name string
		in   []int
		want Curve
	}{
		{"nil", nil, nil},
		{"never informed", []int{-1, -1}, nil},
		{"change points only", []int{0, 2, 2, 5, -1},
			Curve{{0, 1}, {2, 3}, {5, 4}}},
		{"single node", []int{0}, Curve{{0, 1}}},
		{"source not at round zero", []int{3, 3}, Curve{{3, 2}}},
	}
	for _, tc := range cases {
		if got := FromInformedAt(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: FromInformedAt(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestSample(t *testing.T) {
	var long Curve
	for i := 0; i < 500; i++ {
		long = append(long, Point{Round: i, Informed: float64(i + 1)})
	}
	s := long.Sample(32)
	if len(s) != 32 {
		t.Fatalf("sampled to %d, want 32", len(s))
	}
	if s[0] != long[0] || s[31] != long[499] {
		t.Fatalf("endpoints not kept: %v ... %v", s[0], s[31])
	}
	for i := 1; i < len(s); i++ {
		if s[i].Round <= s[i-1].Round || s[i].Informed < s[i-1].Informed {
			t.Fatalf("not monotone at %d: %v -> %v", i, s[i-1], s[i])
		}
	}
	// Already within budget, or a degenerate max: unchanged (same slice).
	if got := long.Sample(500); &got[0] != &long[0] {
		t.Fatal("Sample copied a curve already within budget")
	}
	if got := long.Sample(1); &got[0] != &long[0] {
		t.Fatal("Sample(1) must return the curve unchanged")
	}
	if got := Curve(nil).Sample(8); got != nil {
		t.Fatalf("nil curve sampled to %v", got)
	}
}

func TestFinalAndFinalRound(t *testing.T) {
	c := Curve{{0, 1}, {4, 9}}
	if c.Final() != 9 || c.FinalRound() != 4 {
		t.Fatalf("Final/FinalRound = %v/%d", c.Final(), c.FinalRound())
	}
	var empty Curve
	if empty.Final() != 0 || empty.FinalRound() != -1 {
		t.Fatalf("empty Final/FinalRound = %v/%d", empty.Final(), empty.FinalRound())
	}
}

func TestICCDistanceIdentityAndOrdering(t *testing.T) {
	obs := FromInformedAt([]int{0, 1, 1, 2, 2, 2, 3, 3})
	if d := ICCDistance(obs, obs); d != 0 {
		t.Fatalf("self-distance %v, want 0", d)
	}
	// A candidate that spreads at the same per-round incidence but shifted
	// in time scores 0 too — ICC space removes time alignment.
	shifted := make(Curve, len(obs))
	for i, p := range obs {
		shifted[i] = Point{Round: p.Round + 7, Informed: p.Informed}
	}
	if d := ICCDistance(obs, shifted); d != 0 {
		t.Fatalf("time-shifted distance %v, want 0", d)
	}
	// A candidate that stalls below the plateau is strictly worse than one
	// that reaches it.
	stalled := Curve{{0, 1}, {1, 3}}
	full := FromInformedAt([]int{0, 1, 1, 2, 2, 2, 4, 4})
	if ds, df := ICCDistance(obs, stalled), ICCDistance(obs, full); ds <= df {
		t.Fatalf("stalled %v should score worse than full-spread %v", ds, df)
	}
}

func TestICCDistanceEdgeCases(t *testing.T) {
	if d := ICCDistance(nil, nil); d != 0 {
		t.Fatalf("empty-vs-empty = %v, want 0", d)
	}
	if d := ICCDistance(nil, Curve{{0, 1}}); !math.IsInf(d, 1) {
		t.Fatalf("empty-vs-nonempty = %v, want +Inf", d)
	}
	if d := ICCDistance(Curve{{0, 1}}, nil); !math.IsInf(d, 1) {
		t.Fatalf("nonempty-vs-empty = %v, want +Inf", d)
	}
	// Degenerate single-level observed curve: only the size term remains.
	obs := Curve{{0, 4}}
	if d := ICCDistance(obs, Curve{{0, 1}, {2, 6}}); d != 2 {
		t.Fatalf("degenerate observed distance %v, want |6-4| = 2", d)
	}
}

func TestIncidenceAt(t *testing.T) {
	// 1 @r0, 3 @r2 (incidence 1), 4 @r5 (incidence 1/3).
	c := Curve{{0, 1}, {2, 3}, {5, 4}}
	cases := []struct {
		level, want float64
	}{
		{0.5, 0}, // below the curve's first level
		{1, 0},   // the boundary itself is outside (open interval)
		{2, 1},   // inside (1, 3]
		{3, 1},   // segment upper boundary included
		{3.5, 1. / 3},
		{4, 1. / 3},
		{4.5, 0}, // past the plateau
	}
	for _, tc := range cases {
		if got := c.incidenceAt(tc.level); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("incidenceAt(%v) = %v, want %v", tc.level, got, tc.want)
		}
	}
}
