package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

func TestChanMeshRouting(t *testing.T) {
	m := NewChanMesh(4, 0)
	defer m.Close()
	if got := m.Local(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Local() = %v, want [0 1 2 3]", got)
	}
	if err := m.Send(1, 3, []byte("hi")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	p := <-m.Inbox(3)
	if p.From != 1 || p.To != 3 || string(p.Payload) != "hi" {
		t.Fatalf("got packet %+v", p)
	}
	if err := m.Send(0, 4, nil); err == nil {
		t.Fatal("Send to out-of-range node succeeded")
	}
	if err := m.Send(0, -1, nil); err == nil {
		t.Fatal("Send to negative node succeeded")
	}
}

func TestChanMeshDropOnFull(t *testing.T) {
	m := NewChanMesh(2, 1)
	defer m.Close()
	for i := 0; i < 3; i++ {
		if err := m.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := m.Drops(); got != 2 {
		t.Fatalf("Drops() = %d, want 2 (inbox depth 1, 3 sends)", got)
	}
	if p := <-m.Inbox(1); p.Payload[0] != 0 {
		t.Fatalf("surviving packet = %v, want the first", p.Payload)
	}
}

// TestChanMeshCloseRace hammers Send from many goroutines while Close
// runs: no send may panic on a closed channel, late packets just count
// as drops.
func TestChanMeshCloseRace(t *testing.T) {
	m := NewChanMesh(8, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = m.Send(g, (g+i)%8, []byte{1})
			}
		}(g)
	}
	time.Sleep(time.Millisecond)
	m.Close()
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestChanMeshInboxClosedAfterClose(t *testing.T) {
	m := NewChanMesh(2, 0)
	m.Close()
	if _, open := <-m.Inbox(0); open {
		t.Fatal("inbox still open after Close")
	}
}

func TestNodeRange(t *testing.T) {
	for _, tc := range []struct{ n, procs int }{
		{10, 2}, {10, 3}, {7, 3}, {4, 4}, {100, 7},
	} {
		prev := 0
		for i := 0; i < tc.procs; i++ {
			lo, hi := NodeRange(tc.n, tc.procs, i)
			if lo != prev {
				t.Fatalf("n=%d procs=%d: proc %d starts at %d, want %d", tc.n, tc.procs, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d procs=%d: proc %d has inverted range [%d,%d)", tc.n, tc.procs, i, lo, hi)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d procs=%d: partition covers %d nodes", tc.n, tc.procs, prev)
		}
	}
}

// freeAddrs reserves count distinct loopback ports by listening and
// immediately closing; the tiny reuse race is acceptable in tests.
func freeAddrs(t *testing.T, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	lns := make([]net.Listener, count)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startTCPMeshes boots a full fleet of TCP meshes in-process and waits
// out the HELLO barrier on all of them.
func startTCPMeshes(t *testing.T, addrs []string, n int) []*TCPMesh {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	meshes := make([]*TCPMesh, len(addrs))
	for i := range addrs {
		m, err := NewTCPMesh(i, addrs, n, 0)
		if err != nil {
			t.Fatalf("NewTCPMesh(%d): %v", i, err)
		}
		meshes[i] = m
		t.Cleanup(func() { m.Close() })
	}
	var wg sync.WaitGroup
	errs := make([]error, len(meshes))
	for i, m := range meshes {
		wg.Add(1)
		go func(i int, m *TCPMesh) {
			defer wg.Done()
			errs[i] = m.Start(ctx)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Start(%d): %v", i, err)
		}
	}
	return meshes
}

func TestTCPMeshRoutesAcrossProcesses(t *testing.T) {
	addrs := freeAddrs(t, 2)
	meshes := startTCPMeshes(t, addrs, 10)
	if got := meshes[0].Local(); len(got) != 5 || got[0] != 0 {
		t.Fatalf("mesh 0 Local() = %v", got)
	}
	if got := meshes[1].Local(); len(got) != 5 || got[0] != 5 {
		t.Fatalf("mesh 1 Local() = %v", got)
	}
	// Local delivery on mesh 0.
	if err := meshes[0].Send(1, 2, []byte("local")); err != nil {
		t.Fatalf("local Send: %v", err)
	}
	if p := <-meshes[0].Inbox(2); string(p.Payload) != "local" {
		t.Fatalf("local packet = %+v", p)
	}
	// Cross-process delivery 0 -> 1 and back.
	if err := meshes[0].Send(3, 7, []byte("over")); err != nil {
		t.Fatalf("remote Send: %v", err)
	}
	select {
	case p := <-meshes[1].Inbox(7):
		if p.From != 3 || p.To != 7 || string(p.Payload) != "over" {
			t.Fatalf("remote packet = %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote packet never arrived")
	}
	if err := meshes[1].Send(9, 0, []byte("back")); err != nil {
		t.Fatalf("reverse Send: %v", err)
	}
	select {
	case p := <-meshes[0].Inbox(0):
		if p.From != 9 || string(p.Payload) != "back" {
			t.Fatalf("reverse packet = %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reverse packet never arrived")
	}
}

func TestTCPMeshControlChannel(t *testing.T) {
	addrs := freeAddrs(t, 3)
	meshes := startTCPMeshes(t, addrs, 9)
	for i := 1; i < 3; i++ {
		if err := meshes[i].SendControl(0, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("SendControl(%d): %v", i, err)
		}
	}
	got := map[int]string{}
	for len(got) < 2 {
		select {
		case cm := <-meshes[0].Control():
			got[cm.FromProc] = string(cm.Payload)
		case <-time.After(5 * time.Second):
			t.Fatalf("control messages missing, have %v", got)
		}
	}
	if got[1] != "b" || got[2] != "c" {
		t.Fatalf("control payloads = %v", got)
	}
}

// TestTCPMeshRejectsPartitionDisagreement gives the two processes
// different ideas of n; HELLOs fail the cross-check, so the readiness
// barrier must fail rather than silently misroute packets.
func TestTCPMeshRejectsPartitionDisagreement(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	a, err := NewTCPMesh(0, addrs, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPMesh(1, addrs, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.Start(ctx) }()
	go func() { defer wg.Done(); errB = b.Start(ctx) }()
	wg.Wait()
	if errA == nil || errB == nil {
		t.Fatalf("barrier passed despite partition disagreement: a=%v b=%v", errA, errB)
	}
}

func TestTCPMeshSendAfterClose(t *testing.T) {
	addrs := freeAddrs(t, 2)
	meshes := startTCPMeshes(t, addrs, 4)
	meshes[0].Close()
	if err := meshes[0].Send(0, 3, []byte("x")); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestNewTCPMeshValidation(t *testing.T) {
	if _, err := NewTCPMesh(0, []string{"a"}, 4, 0); err == nil {
		t.Fatal("single-process mesh accepted")
	}
	if _, err := NewTCPMesh(2, []string{"a", "b"}, 4, 0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := NewTCPMesh(0, []string{"a", "b", "c"}, 2, 0); err == nil {
		t.Fatal("fewer nodes than processes accepted")
	}
}
