package transport

import "fmt"

// ChanMesh is the in-process goroutine mesh: every node of the topology
// is hosted locally and a send is one channel operation into the
// destination's bounded inbox. It is the first rung of the real-execution
// ladder — real goroutine concurrency, real clocks, no simulated
// calendar — with none of the socket plumbing, so protocol behavior
// under actual scheduling races can be exercised in unit-test time.
type ChanMesh struct {
	n  int
	ib *inboxes
}

var _ Mesh = (*ChanMesh)(nil)

// NewChanMesh builds a mesh hosting nodes 0..n-1 with per-node inbox
// bound depth (0 = DefaultInboxDepth).
func NewChanMesh(n, depth int) *ChanMesh {
	return &ChanMesh{n: n, ib: newInboxes(0, n, depth)}
}

// Send delivers payload to node to's inbox, dropping on overflow.
func (m *ChanMesh) Send(from, to int, payload []byte) error {
	if to < 0 || to >= m.n {
		return fmt.Errorf("transport: send to node %d outside [0, %d)", to, m.n)
	}
	m.ib.deliver(Packet{From: from, To: to, Payload: payload})
	return nil
}

// Inbox returns node's receive channel.
func (m *ChanMesh) Inbox(node int) <-chan Packet { return m.ib.inbox(node) }

// Local lists every node: the whole topology is in-process.
func (m *ChanMesh) Local() []int {
	out := make([]int, m.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Drops counts packets lost to full inboxes.
func (m *ChanMesh) Drops() int64 { return m.ib.drops.Load() }

// Close closes every inbox; in-flight sends racing Close are dropped.
func (m *ChanMesh) Close() error {
	m.ib.close()
	return nil
}
