// Package transport is the real-message-mesh half of the execution
// abstraction: where the calendar engine (internal/sim) simulates
// message motion deterministically, a Mesh moves real bytes between
// per-node inboxes on real clocks — an in-process goroutine mesh
// (ChanMesh) or TCP connections between processes (TCPMesh), behind one
// interface, so the protocol-side runner (internal/gossip RunNet) is
// transport-agnostic.
//
// A Mesh is deliberately dumb: it routes opaque payloads from node to
// node and drops on congestion (bounded inboxes) exactly like a real
// datagram fabric. Everything protocol-shaped — what the payloads mean,
// when to send, when a run is over — belongs to the runner above.
package transport

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Packet is one routed message: an opaque payload from node From to node
// To. Payload ownership transfers to the receiver.
type Packet struct {
	From, To int
	Payload  []byte
}

// Mesh routes packets between nodes. Implementations host a subset of
// the node id space locally (all of it for ChanMesh, a contiguous range
// per process for TCPMesh) and deliver to local inboxes; sends to
// remote nodes cross whatever fabric the implementation wraps.
type Mesh interface {
	// Send routes payload to node to's inbox. A full destination inbox
	// drops the packet (counted, like a congested switch) rather than
	// blocking the sender; only transport breakage returns an error.
	Send(from, to int, payload []byte) error
	// Inbox is the receive channel of a locally hosted node. The channel
	// is closed by Close.
	Inbox(node int) <-chan Packet
	// Local returns the locally hosted node ids in ascending order.
	Local() []int
	// Drops counts packets dropped on full inboxes so far.
	Drops() int64
	// Close tears the mesh down and closes every local inbox.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: mesh closed")

// DefaultInboxDepth is the per-node inbox bound used when a mesh is
// built with depth 0: deep enough that a node that merely lags a few
// rounds loses nothing, bounded so a stalled node cannot hold the whole
// run's memory.
const DefaultInboxDepth = 256

// inboxes is the shared local-delivery half of both mesh
// implementations: bounded per-node channels with drop-on-full. The
// RWMutex serializes delivery against close so a late packet is dropped
// instead of hitting a closed channel.
type inboxes struct {
	lo    int // first locally hosted node id
	chans []chan Packet
	drops atomic.Int64

	mu     sync.RWMutex
	closed bool
}

func newInboxes(lo, count, depth int) *inboxes {
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	ib := &inboxes{lo: lo, chans: make([]chan Packet, count)}
	for i := range ib.chans {
		ib.chans[i] = make(chan Packet, depth)
	}
	return ib
}

// deliver routes a packet to its local inbox, dropping on overflow or
// after close (a packet racing Close is indistinguishable from one lost
// in flight — exactly the semantics a real socket teardown has).
func (ib *inboxes) deliver(p Packet) {
	ib.mu.RLock()
	defer ib.mu.RUnlock()
	if ib.closed {
		ib.drops.Add(1)
		return
	}
	select {
	case ib.chans[p.To-ib.lo] <- p:
	default:
		ib.drops.Add(1)
	}
}

func (ib *inboxes) inbox(node int) <-chan Packet { return ib.chans[node-ib.lo] }

// close closes every inbox; subsequent deliveries drop. Idempotent.
func (ib *inboxes) close() {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return
	}
	ib.closed = true
	for _, c := range ib.chans {
		close(c)
	}
}
