package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"gossip/internal/server/api"
)

// TCPMesh frames, carried over the same length-prefixed codec the
// cluster shard RPC uses (api.WriteFrame/ReadFrame). The kind byte is a
// namespace per connection protocol, so these values are independent of
// the shard RPC's.
const (
	// FrameHello opens every connection: a JSON Hello identifying the
	// dialing process and the node range it hosts. Neighbor discovery is
	// HELLO-based: a process learns who is reachable (and that the fleet
	// agrees on the node partition) from the HELLOs it receives, not from
	// static configuration alone.
	FrameHello byte = 1
	// FrameData carries one routed packet: varint from, varint to, payload.
	FrameData byte = 2
	// FrameControl carries an out-of-band process-to-process message for
	// the layer above the mesh (result collection, verdicts): varint
	// sender process index, payload.
	FrameControl byte = 3
)

// Hello is the FrameHello payload: the sender's process index and the
// contiguous node range it hosts. The receiver cross-checks the range
// against its own partition of the same (n, processes) pair, so a fleet
// misconfigured with different topologies fails at handshake, not with
// silently misrouted packets.
type Hello struct {
	Index int `json:"index"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	N     int `json:"n"`
}

// ControlMsg is one out-of-band message between processes.
type ControlMsg struct {
	FromProc int
	Payload  []byte
}

// NodeRange returns the contiguous node range process index hosts when
// n nodes are partitioned over procs processes — the same ceil-split
// rule the distributed shard engine uses, so placement is a pure
// function every process computes identically.
func NodeRange(n, procs, index int) (lo, hi int) {
	per := (n + procs - 1) / procs
	lo = index * per
	if lo > n {
		lo = n
	}
	hi = lo + per
	if hi > n {
		hi = n
	}
	return lo, hi
}

// TCPMesh hosts one process's contiguous node range and routes packets
// to remote ranges over TCP. Every ordered process pair uses the
// connection the sender dialed; inbound connections are read-only.
type TCPMesh struct {
	index  int
	addrs  []string
	n      int
	lo, hi int
	ib     *inboxes
	ln     net.Listener
	ctrl   chan ControlMsg

	mu     sync.Mutex
	out    []*peerConn // indexed by process; nil for self / not yet dialed
	in     []net.Conn  // accepted connections, closed on Close to unblock readers
	closed bool

	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

func (pc *peerConn) write(kind byte, payload []byte) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if err := api.WriteFrame(pc.bw, kind, payload); err != nil {
		return err
	}
	return pc.bw.Flush()
}

// NewTCPMesh builds the mesh half of process index of the fleet addrs
// (host:port per process), hosting its NodeRange share of nodes 0..n-1.
// Call Start to listen, dial and exchange HELLOs before sending.
func NewTCPMesh(index int, addrs []string, n, depth int) (*TCPMesh, error) {
	if len(addrs) < 2 {
		return nil, fmt.Errorf("transport: a TCP mesh needs >= 2 processes, got %d", len(addrs))
	}
	if index < 0 || index >= len(addrs) {
		return nil, fmt.Errorf("transport: process index %d outside [0, %d)", index, len(addrs))
	}
	if n < len(addrs) {
		return nil, fmt.Errorf("transport: %d nodes cannot span %d processes", n, len(addrs))
	}
	lo, hi := NodeRange(n, len(addrs), index)
	return &TCPMesh{
		index: index,
		addrs: addrs,
		n:     n,
		lo:    lo,
		hi:    hi,
		ib:    newInboxes(lo, hi-lo, depth),
		ctrl:  make(chan ControlMsg, 64),
		out:   make([]*peerConn, len(addrs)),
	}, nil
}

// Start listens on this process's address, dials every peer (retrying
// until ctx expires — peers boot in any order), sends its HELLO and
// waits for every peer's HELLO to arrive. When Start returns nil the
// full mesh is connected both ways: every process can reach and be
// reached by every other, the readiness barrier a run begins behind.
func (m *TCPMesh) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", m.addrs[m.index])
	if err != nil {
		return fmt.Errorf("transport: listening on %s: %w", m.addrs[m.index], err)
	}
	m.ln = ln
	helloed := make(chan int, len(m.addrs))
	m.wg.Add(1)
	go m.acceptLoop(helloed)

	for j := range m.addrs {
		if j == m.index {
			continue
		}
		pc, err := m.dialPeer(ctx, j)
		if err != nil {
			m.Close()
			return err
		}
		m.mu.Lock()
		m.out[j] = pc
		m.mu.Unlock()
	}

	// Readiness barrier: one HELLO per peer must have arrived inbound.
	pending := make(map[int]bool, len(m.addrs)-1)
	for j := range m.addrs {
		if j != m.index {
			pending[j] = true
		}
	}
	for len(pending) > 0 {
		select {
		case idx := <-helloed:
			delete(pending, idx)
		case <-ctx.Done():
			m.Close()
			return fmt.Errorf("transport: mesh barrier: %d peers never said HELLO: %w", len(pending), ctx.Err())
		}
	}
	return nil
}

// dialPeer connects to process j with retries (the fleet boots in any
// order) and opens the connection with this process's HELLO.
func (m *TCPMesh) dialPeer(ctx context.Context, j int) (*peerConn, error) {
	var d net.Dialer
	for {
		conn, err := d.DialContext(ctx, "tcp", m.addrs[j])
		if err == nil {
			pc := &peerConn{conn: conn, bw: bufio.NewWriter(conn)}
			hello, merr := json.Marshal(Hello{Index: m.index, Lo: m.lo, Hi: m.hi, N: m.n})
			if merr != nil {
				conn.Close()
				return nil, merr
			}
			if err := pc.write(FrameHello, hello); err != nil {
				conn.Close()
				return nil, fmt.Errorf("transport: HELLO to %s: %w", m.addrs[j], err)
			}
			return pc, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dialing peer %d (%s): %w", j, m.addrs[j], ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (m *TCPMesh) acceptLoop(helloed chan<- int) {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.in = append(m.in, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn, helloed)
	}
}

// readLoop consumes one inbound connection: a HELLO first (registered
// for the readiness barrier and cross-checked against this process's
// partition), then data and control frames until the peer closes.
func (m *TCPMesh) readLoop(conn net.Conn, helloed chan<- int) {
	defer m.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	var buf []byte
	kind, payload, err := api.ReadFrame(br, nil)
	if err != nil || kind != FrameHello {
		return
	}
	var h Hello
	if json.Unmarshal(payload, &h) != nil {
		return
	}
	if h.Index < 0 || h.Index >= len(m.addrs) || h.N != m.n {
		return // partition disagreement: refuse the connection
	}
	if lo, hi := NodeRange(m.n, len(m.addrs), h.Index); h.Lo != lo || h.Hi != hi {
		return
	}
	select {
	case helloed <- h.Index:
	default:
	}
	for {
		kind, payload, err = api.ReadFrame(br, buf[:0])
		if err != nil {
			return
		}
		buf = payload
		switch kind {
		case FrameData:
			from, rest, err := readVarint(payload)
			if err != nil {
				return
			}
			to, rest, err := readVarint(rest)
			if err != nil {
				return
			}
			if to < m.lo || to >= m.hi {
				continue // misrouted; drop
			}
			// The payload aliases the read scratch; copy before queueing.
			m.ib.deliver(Packet{From: from, To: to, Payload: append([]byte(nil), rest...)})
		case FrameControl:
			from, rest, err := readVarint(payload)
			if err != nil {
				return
			}
			select {
			case m.ctrl <- ControlMsg{FromProc: from, Payload: append([]byte(nil), rest...)}:
			default:
				m.ib.drops.Add(1)
			}
		default:
			return
		}
	}
}

func readVarint(p []byte) (int, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("transport: truncated varint")
	}
	return int(v), p[n:], nil
}

// owner returns the process hosting node id.
func (m *TCPMesh) owner(node int) int {
	per := (m.n + len(m.addrs) - 1) / len(m.addrs)
	return node / per
}

// Send routes payload to node to: a local inbox delivery when this
// process hosts it, one data frame on the dialed connection otherwise.
func (m *TCPMesh) Send(from, to int, payload []byte) error {
	if to < 0 || to >= m.n {
		return fmt.Errorf("transport: send to node %d outside [0, %d)", to, m.n)
	}
	if to >= m.lo && to < m.hi {
		m.ib.deliver(Packet{From: from, To: to, Payload: payload})
		return nil
	}
	m.mu.Lock()
	pc := m.out[m.owner(to)]
	closed := m.closed
	m.mu.Unlock()
	if closed || pc == nil {
		return ErrClosed
	}
	frame := make([]byte, 0, len(payload)+2*binary.MaxVarintLen64)
	frame = binary.AppendUvarint(frame, uint64(from))
	frame = binary.AppendUvarint(frame, uint64(to))
	frame = append(frame, payload...)
	return pc.write(FrameData, frame)
}

// SendControl sends an out-of-band message to process toProc.
func (m *TCPMesh) SendControl(toProc int, payload []byte) error {
	m.mu.Lock()
	pc := m.out[toProc]
	closed := m.closed
	m.mu.Unlock()
	if closed || pc == nil {
		return ErrClosed
	}
	frame := make([]byte, 0, len(payload)+binary.MaxVarintLen64)
	frame = binary.AppendUvarint(frame, uint64(m.index))
	frame = append(frame, payload...)
	return pc.write(FrameControl, frame)
}

// Control returns the out-of-band message channel.
func (m *TCPMesh) Control() <-chan ControlMsg { return m.ctrl }

// Inbox returns the receive channel of a locally hosted node.
func (m *TCPMesh) Inbox(node int) <-chan Packet { return m.ib.inbox(node) }

// Local lists the locally hosted nodes.
func (m *TCPMesh) Local() []int {
	out := make([]int, 0, m.hi-m.lo)
	for u := m.lo; u < m.hi; u++ {
		out = append(out, u)
	}
	return out
}

// Drops counts packets lost to full local inboxes.
func (m *TCPMesh) Drops() int64 { return m.ib.drops.Load() }

// Close tears down the listener, every connection and every inbox.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := append([]*peerConn(nil), m.out...)
	inbound := append([]net.Conn(nil), m.in...)
	m.mu.Unlock()
	if m.ln != nil {
		m.ln.Close()
	}
	for _, pc := range conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	for _, c := range inbound {
		c.Close()
	}
	m.ib.close()
	m.wg.Wait()
	return nil
}

var _ Mesh = (*TCPMesh)(nil)
