package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"gossip/internal/server"
)

// TestDistCheckFleet drives the full distributed stack in-process: a
// 3-member fleet (partitioned cache + sharded execution over real HTTP
// shard sessions) checked byte-for-byte against a single-process
// reference.
func TestDistCheckFleet(t *testing.T) {
	fleet, err := StartFleet(3, server.Config{Pool: 2})
	if err != nil {
		t.Fatalf("StartFleet: %v", err)
	}
	defer fleet.Close()
	ref, err := StartLocal(server.Config{Pool: 2})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer ref.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var out bytes.Buffer
	err = DistCheck(ctx, DistCheckOptions{
		FleetURLs:    fleet.URLs(),
		ReferenceURL: ref.URL,
		Shards:       2,
		ShardN:       512,
		Seed:         7,
		Out:          &out,
	})
	if err != nil {
		t.Fatalf("DistCheck: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "distcheck: OK") {
		t.Fatalf("missing final OK line in report:\n%s", out.String())
	}

	// The check must have exercised the distributed paths, not just
	// happened to pass: one coordinated shard job, worker sessions on the
	// other members, and at least one cross-member cache forward.
	var shardJobs, sessions, forwarded, served int64
	for _, m := range fleet.Members {
		snap := m.Server.Metrics()
		shardJobs += snap.ShardJobs
		sessions += snap.ShardSessions
		forwarded += snap.Forwarded
		served += snap.ForwardServed
	}
	if shardJobs == 0 {
		t.Error("no fleet member coordinated a sharded job")
	}
	if sessions < 2 {
		t.Errorf("shard sessions = %d, want >= 2 (one per worker)", sessions)
	}
	if forwarded == 0 {
		t.Error("no request was forwarded to its cache-key owner")
	}
	if served == 0 {
		t.Error("no owner served a forwarded request")
	}
}

func TestDistCheckRejects(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		o    DistCheckOptions
		want string
	}{
		{"one member", DistCheckOptions{FleetURLs: []string{"http://a"}, ReferenceURL: "http://r"}, "at least 2"},
		{"no reference", DistCheckOptions{FleetURLs: []string{"http://a", "http://b"}}, "ReferenceURL"},
		{"too many shards", DistCheckOptions{FleetURLs: []string{"http://a", "http://b"}, ReferenceURL: "http://r", Shards: 2}, "fleet members"},
	}
	for _, tc := range cases {
		err := DistCheck(ctx, tc.o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestStartFleetRejectsSingleton(t *testing.T) {
	if _, err := StartFleet(1, server.Config{}); err == nil {
		t.Fatal("StartFleet(1) succeeded, want error")
	}
}
