package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"gossip/internal/server"
	"gossip/internal/server/api"
)

// DistCheckOptions configure the distributed-mode end-to-end check
// behind `gossipd -distcheck` and the CI distributed-smoke job. The
// fleet and the reference server are external (already running); the
// check is a pure client.
type DistCheckOptions struct {
	// FleetURLs are the fleet members' base URLs (>= 2 required; the
	// first member coordinates the sharded job).
	FleetURLs []string
	// ReferenceURL is a single-process gossipd outside the fleet; every
	// body the fleet produces must match this server's byte for byte.
	ReferenceURL string
	// Shards is the sharded job's worker count (<=0: 2). Must be at
	// most len(FleetURLs)-1.
	Shards int
	// ShardN is the sharded job's graph size (<=0: 4096; CI passes 1<<18).
	ShardN int
	// Seed decorrelates runs (default 1).
	Seed uint64
	// Out receives the progress report (default: discard).
	Out io.Writer
}

func (o DistCheckOptions) withDefaults() DistCheckOptions {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.ShardN <= 0 {
		o.ShardN = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// DistCheck proves the fleet contract end to end:
//
//  1. The 6-driver DefaultMix, rotated across every fleet member, must
//     produce bodies byte-identical to the reference single-process
//     server — through whatever path each member takes (local
//     execution, cache-key forwarding, cache replay).
//  2. One sharded push-pull job (shards workers) posted to the first
//     member must be byte-identical to the reference server running the
//     identical request single-process: the distributed merge is
//     bit-exact, not just statistically equivalent.
//  3. A fresh unique job posted to one member and then re-posted to a
//     *different* member must come back X-Gossipd-Cache: hit — the
//     consistent-hash routing makes N processes one cache.
func DistCheck(ctx context.Context, o DistCheckOptions) error {
	o = o.withDefaults()
	if len(o.FleetURLs) < 2 {
		return fmt.Errorf("distcheck: need at least 2 fleet members, got %d", len(o.FleetURLs))
	}
	if o.ReferenceURL == "" {
		return fmt.Errorf("distcheck: ReferenceURL required")
	}
	if o.Shards > len(o.FleetURLs)-1 {
		return fmt.Errorf("distcheck: %d shards needs %d fleet members, have %d", o.Shards, o.Shards+1, len(o.FleetURLs))
	}
	client := &http.Client{Transport: tunedTransport(8)}
	fetch := func(base string, req server.Request) (string, []byte, error) {
		opts := Options{BaseURL: base, Client: client}
		status, cache, body, err := post(ctx, opts, simPath, req)
		if err != nil {
			return "", nil, err
		}
		if status != http.StatusOK {
			return "", nil, fmt.Errorf("status %d from %s (body %.200s)", status, base, body)
		}
		if _, _, errEvent, perr := parseStream(body); perr != nil {
			return "", nil, fmt.Errorf("malformed stream from %s: %v", base, perr)
		} else if errEvent != "" {
			return "", nil, fmt.Errorf("job error from %s: %s", base, errEvent)
		}
		return cache, body, nil
	}

	// Phase 1: the driver mix, rotated across members, vs the reference.
	for i, req := range DefaultMix(o.Seed) {
		member := o.FleetURLs[i%len(o.FleetURLs)]
		_, fleetBody, err := fetch(member, req)
		if err != nil {
			return fmt.Errorf("distcheck: mix job %d (%s) via %s: %w", i, req.Driver, member, err)
		}
		_, refBody, err := fetch(o.ReferenceURL, req)
		if err != nil {
			return fmt.Errorf("distcheck: mix job %d (%s) on reference: %w", i, req.Driver, err)
		}
		if !bytes.Equal(fleetBody, refBody) {
			return fmt.Errorf("distcheck: mix job %d (%s): fleet body differs from the reference server", i, req.Driver)
		}
	}
	fmt.Fprintf(o.Out, "distcheck: %d mix jobs byte-identical across %d fleet members and the reference\n",
		len(DefaultMix(o.Seed)), len(o.FleetURLs))

	// Phase 2: the sharded job vs the identical single-process run.
	// shards is an execution knob outside the canonical form, so both
	// servers compute the same request key — and must produce the same
	// bytes.
	shardReq := server.Request{
		Driver: "push-pull",
		Graph:  server.GraphSpec{Family: "regular", N: o.ShardN, Latency: 1},
		Seed:   o.Seed*7_368_787 + 5,
		Shards: o.Shards,
	}
	_, distBody, err := fetch(o.FleetURLs[0], shardReq)
	if err != nil {
		return fmt.Errorf("distcheck: sharded n=%d job: %w", o.ShardN, err)
	}
	single := shardReq
	single.Shards = 0
	_, refBody, err := fetch(o.ReferenceURL, single)
	if err != nil {
		return fmt.Errorf("distcheck: single-process reference of the sharded job: %w", err)
	}
	if !bytes.Equal(distBody, refBody) {
		return fmt.Errorf("distcheck: sharded n=%d run diverged from the single-process reference", o.ShardN)
	}
	fmt.Fprintf(o.Out, "distcheck: sharded n=%d job (%d workers) byte-identical to single-process\n", o.ShardN, o.Shards)

	// Phase 3: cache-key forwarding. A fresh key computed via one member
	// must be a cache hit when requested through a different member.
	fwdReq := server.Request{
		Driver: "flood",
		Graph:  server.GraphSpec{Family: "clique", N: 14},
		Seed:   o.Seed*9_176_041 + 11,
	}
	_, coldBody, err := fetch(o.FleetURLs[0], fwdReq)
	if err != nil {
		return fmt.Errorf("distcheck: forward probe (cold): %w", err)
	}
	cache, warmBody, err := fetch(o.FleetURLs[1], fwdReq)
	if err != nil {
		return fmt.Errorf("distcheck: forward probe via second member: %w", err)
	}
	if cache != "hit" {
		return fmt.Errorf("distcheck: identical request to a different fleet member served %q, want %s: hit", cache, api.CacheHeader)
	}
	if !bytes.Equal(coldBody, warmBody) {
		return fmt.Errorf("distcheck: forwarded cache replay differs from the original body")
	}
	fmt.Fprintf(o.Out, "distcheck: OK — cross-member request hit the partitioned cache\n")
	return nil
}
