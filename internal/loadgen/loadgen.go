// Package loadgen is the in-repo closed-loop load generator for gossipd:
// N concurrent clients drive a fixed request mix against a server and
// every response is checked, not just counted. It asserts the service
// contracts end to end — all 2xx, per-key byte-identical bodies
// (determinism through the service layer), and at most one cache miss
// per request key (memoization + request coalescing) — and reports peak
// client-side concurrency so CI can prove the server sustains hundreds
// of in-flight jobs. Used by `gossipd -selfcheck`, the CI load-smoke
// job, the E26 experiment and the server throughput benchmarks.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/server"
	"gossip/internal/server/api"
)

// Options configure one load run.
type Options struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the closed-loop client count (<=0: 4).
	Clients int
	// Requests is how many mix requests each client issues, round-robin
	// over Mix by global request index (<=0: one pass over Mix).
	Requests int
	// Mix is the request template list (empty: DefaultMix(BaseSeed)).
	Mix []server.Request
	// Sweeps are warm-start sweep jobs every client posts once after its
	// mix requests (nil: DefaultSweeps(BaseSeed); empty non-nil: none).
	// Identical concurrent sweeps must coalesce exactly like simulations:
	// the same all-2xx / byte-identical / miss-once contracts apply to
	// the sweep stream.
	Sweeps []server.SweepRequest
	// Estimates are inverse-estimation jobs every client posts once after
	// its sweeps (nil: DefaultEstimates(BaseSeed); empty non-nil: none).
	// The estimate stream is held to the same contracts: all-2xx,
	// byte-identical replays, at most one miss per estimate key.
	Estimates []server.EstimateRequest
	// Surge, when true, prepends a barrier-synchronized wave: every
	// client simultaneously submits one heavy unique-seed job (no
	// coalescing, no cache reuse possible), which is what drives peak
	// in-flight concurrency to ~Clients.
	Surge bool
	// SurgeN is the surge job's graph size (<=0: 2048).
	SurgeN int
	// BaseSeed decorrelates runs (default 1).
	BaseSeed uint64
	// Client overrides the HTTP client (default: shared transport sized
	// for Clients connections, no timeout — bound the run with ctx).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if len(o.Mix) == 0 {
		o.Mix = DefaultMix(o.BaseSeed)
	}
	if o.Sweeps == nil {
		o.Sweeps = DefaultSweeps(o.BaseSeed)
	}
	if o.Estimates == nil {
		o.Estimates = DefaultEstimates(o.BaseSeed)
	}
	if o.Requests <= 0 {
		o.Requests = (len(o.Mix) + o.Clients - 1) / o.Clients
	}
	if o.SurgeN <= 0 {
		o.SurgeN = 2048
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: tunedTransport(o.Clients)}
	}
	return o
}

// tunedTransport sizes the client transport so a closed-loop run with
// `clients` concurrent connections reuses every connection via
// keep-alives instead of re-dialing per request: with the default
// transport's 2 idle connections per host, a 220-client smoke measures
// TCP churn and TIME_WAIT pressure, not server throughput. Compression
// is disabled because the NDJSON bodies are compared byte for byte.
func tunedTransport(clients int) *http.Transport {
	return &http.Transport{
		MaxIdleConns:        clients + 8,
		MaxIdleConnsPerHost: clients + 8,
		IdleConnTimeout:     90 * time.Second,
		DisableCompression:  true,
	}
}

// Report is the outcome of a run. Violations is the merged list of
// contract breaches: non-2xx responses, malformed streams, in-stream
// error events, per-key body divergence (nondeterminism), and repeat
// cache misses for a key already computed.
type Report struct {
	Requests        int
	Non200          int
	CacheHits       int
	CacheMisses     int
	DistinctKeys    int
	PeakInFlight    int
	RoundsSimulated int64
	Violations      []string
	Elapsed         time.Duration
	Throughput      float64 // requests per second, wall clock
	// Bodies maps request key → the first full response body observed,
	// for cross-server determinism comparison.
	Bodies map[string][]byte
}

// Err folds the report into a single pass/fail error.
func (r *Report) Err() error {
	if r.Non200 > 0 {
		return fmt.Errorf("loadgen: %d non-200 responses (first violations: %v)", r.Non200, head(r.Violations, 3))
	}
	if len(r.Violations) > 0 {
		return fmt.Errorf("loadgen: %d contract violations, e.g. %v", len(r.Violations), head(r.Violations, 3))
	}
	return nil
}

// Fprint writes the human-readable summary.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests in %v (%.0f req/s), peak in-flight %d\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.PeakInFlight)
	fmt.Fprintf(w, "loadgen: %d distinct jobs, cache %d hits / %d misses, %d rounds simulated\n",
		r.DistinctKeys, r.CacheHits, r.CacheMisses, r.RoundsSimulated)
	if r.Non200 > 0 || len(r.Violations) > 0 {
		fmt.Fprintf(w, "loadgen: FAIL — %d non-200, %d violations\n", r.Non200, len(r.Violations))
		for _, v := range head(r.Violations, 10) {
			fmt.Fprintf(w, "loadgen:   %s\n", v)
		}
		return
	}
	fmt.Fprintf(w, "loadgen: OK — all responses 2xx, deterministic, at most one miss per key\n")
}

func head(xs []string, n int) []string {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

// DefaultMix is the fixed request mix of the CI load-smoke job: cheap
// cache-friendly jobs across six drivers, including a lossy/churny
// fault-schedule job and a loss-only pipeline job.
func DefaultMix(seed uint64) []server.Request {
	dumbbell := server.GraphSpec{Family: "dumbbell", N: 8, Latency: 12}
	grid := server.GraphSpec{Family: "grid", N: 9, Latency: 2}
	kl := true
	return []server.Request{
		{Driver: "push-pull", Graph: dumbbell, Seed: seed},
		{Driver: "push-pull", Graph: dumbbell, Seed: seed + 1},
		{Driver: "flood", Graph: server.GraphSpec{Family: "clique", N: 12}, Seed: seed},
		{Driver: "dtg", Graph: grid, Seed: seed},
		{Driver: "superstep", Graph: grid, Seed: seed},
		{Driver: "spanner", Graph: server.GraphSpec{Family: "dumbbell", N: 6, Latency: 16}, Seed: seed, KnownLatencies: &kl},
		{Driver: "auto", Graph: server.GraphSpec{Family: "dumbbell", N: 6, Latency: 8}, Seed: seed, KnownLatencies: &kl},
		// The adversity jobs: message loss + amnesic churn + a link flap
		// + a crash batch on the dumbbell, and a lossy rr pipeline run.
		{Driver: "push-pull", Graph: dumbbell, Seed: seed,
			FaultSpec: "loss=0.15;churn=2:6-14:amnesia;flap=0-1:3-8;crash=9:5"},
		{Driver: "rr", Graph: server.GraphSpec{Family: "clique", N: 12}, Seed: seed, FaultSpec: "loss=0.1"},
	}
}

// DefaultSweeps is the warm-start sweep of the CI load-smoke job: one
// push-pull base forked at round 6 into a control variant, a lossy
// divergence and a shortened horizon. The base coincides with the first
// DefaultMix entry, so the sweep's control variant must reproduce that
// job's result through the snapshot path.
func DefaultSweeps(seed uint64) []server.SweepRequest {
	loss := "loss=0.25"
	horizon := 24
	return []server.SweepRequest{{
		Base:      server.Request{Driver: "push-pull", Graph: server.GraphSpec{Family: "dumbbell", N: 8, Latency: 12}, Seed: seed},
		ForkRound: 6,
		Variants: []server.SweepVariant{
			{},
			{FaultSpec: &loss},
			{MaxRounds: &horizon},
		},
	}}
}

// DefaultEstimates is the inverse-estimation job of the CI load-smoke
// mix: fit the loss rate of a lossy reference run over a small lattice.
// The base coincides with the first DefaultMix entry and the planted
// loss sits on the lattice, so the estimate must terminate with an
// estimate event whose candidate evaluations share the simulation
// cache with the mix jobs.
func DefaultEstimates(seed uint64) []server.EstimateRequest {
	base := server.Request{Driver: "push-pull", Graph: server.GraphSpec{Family: "dumbbell", N: 8, Latency: 12}, Seed: seed}
	ref := base
	ref.FaultSpec = "loss=0.2"
	refine := 1
	return []server.EstimateRequest{{
		Base:      base,
		Reference: &ref,
		Grid:      &api.EstimateGrid{LossMax: 0.4, LossSteps: 3, ChurnMax: 2, ChurnSteps: 2, Scales: []int{1}},
		Refine:    &refine,
	}}
}

// surgeRequest is client i's unique heavy job: a 4-regular random graph
// push-pull run whose seed no other client shares, so the surge wave
// cannot coalesce or hit cache and genuinely occupies the server.
func surgeRequest(o Options, client int) server.Request {
	return server.Request{
		Driver: "push-pull",
		Graph:  server.GraphSpec{Family: "regular", N: o.SurgeN, Latency: 1},
		Seed:   o.BaseSeed*1_000_003 + uint64(client) + 1,
	}
}

// collector accumulates thread-shared run state.
type collector struct {
	mu          sync.Mutex
	report      Report
	missesByKey map[string]int
	outstanding atomic.Int64
	peak        atomic.Int64
}

// Run drives the load and returns the checked report. The error return
// is reserved for setup problems (bad options, ctx cancelled); contract
// breaches land in Report.Violations / Report.Err.
func Run(ctx context.Context, o Options) (*Report, error) {
	o = o.withDefaults()
	if o.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	c := &collector{missesByKey: map[string]int{}}
	c.report.Bodies = map[string][]byte{}

	start := time.Now()
	var wg sync.WaitGroup
	barrier := make(chan struct{})
	var armed sync.WaitGroup
	if o.Surge {
		armed.Add(o.Clients)
	}
	for i := 0; i < o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if o.Surge {
				req := surgeRequest(o, i)
				armed.Done()
				<-barrier // everyone fires together
				c.do(ctx, o, simPath, req, req.Driver)
			}
			for j := 0; j < o.Requests; j++ {
				req := o.Mix[(i*o.Requests+j)%len(o.Mix)]
				c.do(ctx, o, simPath, req, req.Driver)
			}
			for _, sw := range o.Sweeps {
				c.do(ctx, o, sweepPath, sw, "sweep:"+sw.Base.Driver)
			}
			for _, est := range o.Estimates {
				c.do(ctx, o, estimatePath, est, "estimate:"+est.Base.Driver)
			}
		}(i)
	}
	if o.Surge {
		armed.Wait()
	}
	close(barrier)
	wg.Wait()

	// Sequential verification pass: every mix job already computed above
	// must now replay from cache, byte-identically.
	for _, req := range o.Mix {
		if ctx.Err() != nil {
			break
		}
		c.verify(ctx, o, simPath, req)
	}
	for _, sw := range o.Sweeps {
		if ctx.Err() != nil {
			break
		}
		c.verify(ctx, o, sweepPath, sw)
	}
	for _, est := range o.Estimates {
		if ctx.Err() != nil {
			break
		}
		c.verify(ctx, o, estimatePath, est)
	}

	c.report.Elapsed = time.Since(start)
	if c.report.Elapsed > 0 {
		c.report.Throughput = float64(c.report.Requests) / c.report.Elapsed.Seconds()
	}
	c.report.DistinctKeys = len(c.report.Bodies)
	c.report.PeakInFlight = int(c.peak.Load())
	sort.Strings(c.report.Violations)
	if err := ctx.Err(); err != nil {
		return &c.report, err
	}
	return &c.report, nil
}

// simPath, sweepPath and estimatePath are the POST endpoints the
// generator exercises; all speak the api package's NDJSON stream.
const (
	simPath      = "/v1/simulations"
	sweepPath    = "/v1/sweeps"
	estimatePath = "/v1/estimates"
)

// track wraps one outstanding request, maintaining the peak concurrent
// in-flight count across all clients.
func (c *collector) track(ctx context.Context, o Options, path string, payload any) (int, string, []byte, error) {
	cur := c.outstanding.Add(1)
	for {
		old := c.peak.Load()
		if cur <= old || c.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	defer c.outstanding.Add(-1)
	return post(ctx, o, path, payload)
}

// do issues one request and feeds the response through the contract
// checks.
func (c *collector) do(ctx context.Context, o Options, path string, payload any, label string) {
	status, cache, body, err := c.track(ctx, o, path, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Requests++
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		c.report.Non200++
		c.violate("transport error: %v", err)
		return
	}
	if status != http.StatusOK {
		c.report.Non200++
		c.violate("status %d for %s job (body %.120s)", status, label, body)
		return
	}
	key, rounds, errEvent, perr := parseStream(body)
	if perr != nil {
		c.violate("malformed stream for %s job: %v", label, perr)
		return
	}
	if errEvent != "" {
		c.violate("job error for %s (key %s): %s", label, key, errEvent)
		return
	}
	c.report.RoundsSimulated += rounds
	switch cache {
	case "hit":
		c.report.CacheHits++
	case "miss":
		c.report.CacheMisses++
		c.missesByKey[key]++
		if c.missesByKey[key] > 1 {
			c.violate("cache miss #%d for identical request key %s", c.missesByKey[key], key)
		}
	default:
		c.violate("missing %s header (key %s)", api.CacheHeader, key)
	}
	if prev, ok := c.report.Bodies[key]; ok {
		if !bytes.Equal(prev, body) {
			c.violate("nondeterministic response body for key %s", key)
		}
	} else {
		c.report.Bodies[key] = body
	}
}

// verify replays one mix request sequentially after the load phase: its
// key was computed above, so the response must be a cache hit and match
// the recorded body.
func (c *collector) verify(ctx context.Context, o Options, path string, payload any) {
	status, cache, body, err := c.track(ctx, o, path, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Requests++
	if err != nil || status != http.StatusOK {
		if ctx.Err() != nil {
			return
		}
		c.report.Non200++
		c.violate("verify pass: status %d err %v", status, err)
		return
	}
	key, _, _, perr := parseStream(body)
	if perr != nil {
		c.violate("verify pass: malformed stream: %v", perr)
		return
	}
	prev, seen := c.report.Bodies[key]
	if !seen {
		// This mix entry never ran during the load phase (tiny Requests
		// budget); record its first execution instead.
		c.report.Bodies[key] = body
		if cache == "miss" {
			c.report.CacheMisses++
			c.missesByKey[key]++
		}
		return
	}
	if cache != "hit" {
		c.violate("verify pass: key %s already computed but served %q, want hit", key, cache)
		return
	}
	c.report.CacheHits++
	if !bytes.Equal(prev, body) {
		c.violate("verify pass: cached replay of key %s differs from recorded body", key)
	}
}

func (c *collector) violate(format string, args ...any) {
	if len(c.report.Violations) < 64 {
		c.report.Violations = append(c.report.Violations, fmt.Sprintf(format, args...))
	}
}

// post issues one request against the given endpoint.
func post(ctx context.Context, o Options, path string, payload any) (int, string, []byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return 0, "", nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		o.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return 0, "", nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := o.Client.Do(hreq)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get(api.CacheHeader), body, nil
}

// parseStream validates the stream shape (accepted first, then a
// result, error or sweep_result terminator; see package api) and
// extracts the request key, the simulated rounds and any in-stream
// error — a sweep variant's error event anywhere in the stream counts.
func parseStream(body []byte) (key string, rounds int64, errEvent string, err error) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var last api.Event
	firstErr := ""
	n := 0
	for sc.Scan() {
		var ev api.Event
		if uerr := json.Unmarshal(sc.Bytes(), &ev); uerr != nil {
			return "", 0, "", fmt.Errorf("line %d: %w", n, uerr)
		}
		if ev.SchemaVersion != api.SchemaVersion {
			return "", 0, "", fmt.Errorf("line %d: schema_version %d, want %d", n, ev.SchemaVersion, api.SchemaVersion)
		}
		if n == 0 {
			if ev.Event != "accepted" || ev.RequestKey == "" {
				return "", 0, "", fmt.Errorf("stream does not start with accepted: %s", sc.Text())
			}
			key = ev.RequestKey
		}
		if ev.Event == "error" && firstErr == "" && ev.Error != nil {
			firstErr = ev.Error.Error()
		}
		last = ev
		n++
	}
	if serr := sc.Err(); serr != nil {
		return "", 0, "", serr
	}
	switch {
	case n == 0:
		return "", 0, "", fmt.Errorf("empty stream")
	case firstErr != "":
		return key, 0, firstErr, nil
	case last.Event == "result":
		return key, int64(last.Result.Rounds), "", nil
	case last.Event == "sweep_result":
		return key, last.TotalRounds, "", nil
	case last.Event == "estimate":
		return key, 0, "", nil
	}
	return "", 0, "", fmt.Errorf("stream ends with %q, want result, sweep_result, estimate or error", last.Event)
}

// Local is an in-process gossipd on a loopback listener: the zero-setup
// server used by -selfcheck, tests, experiments and benchmarks.
type Local struct {
	Server *server.Server
	URL    string
	hs     *http.Server
}

// StartLocal boots a server.New(cfg) on 127.0.0.1:0.
func StartLocal(cfg server.Config) (*Local, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := server.New(cfg)
	hs := &http.Server{Handler: s.Handler()}
	go func() {
		// ErrServerClosed after Close; anything else would surface as
		// request failures in the caller's checks.
		_ = hs.Serve(lis)
	}()
	return &Local{Server: s, URL: "http://" + lis.Addr().String(), hs: hs}, nil
}

// Close drains and shuts the listener down, waiting briefly for
// in-flight handlers.
func (l *Local) Close() {
	l.Server.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = l.hs.Shutdown(ctx)
}
