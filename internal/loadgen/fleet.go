package loadgen

import (
	"fmt"
	"net"
	"net/http"

	"gossip/internal/server"
)

// Fleet is n in-process gossipds sharing one membership list — the
// zero-setup harness for the distributed features (partitioned cache,
// sharded execution) used by tests and experiments. Real-process fleets
// (the CI distributed-smoke job) are launched from the Makefile instead.
type Fleet struct {
	Members []*Local
}

// StartFleet boots n servers on loopback listeners, all configured with
// the full peer list so every member can forward cache traffic and
// coordinate sharded jobs across the others. cfg applies to every
// member (Peers/Advertise are overwritten).
func StartFleet(n int, cfg server.Config) (*Fleet, error) {
	if n < 2 {
		return nil, fmt.Errorf("loadgen: a fleet needs at least 2 members, got %d", n)
	}
	// Bind every listener first: the membership list must be complete
	// before any server starts.
	listeners := make([]net.Listener, 0, n)
	peers := make([]string, 0, n)
	closeAll := func() {
		for _, lis := range listeners {
			_ = lis.Close()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, err
		}
		listeners = append(listeners, lis)
		peers = append(peers, lis.Addr().String())
	}
	f := &Fleet{Members: make([]*Local, 0, n)}
	for i, lis := range listeners {
		mcfg := cfg
		mcfg.Peers = peers
		mcfg.Advertise = peers[i]
		s := server.New(mcfg)
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(lis) }()
		f.Members = append(f.Members, &Local{Server: s, URL: "http://" + lis.Addr().String(), hs: hs})
	}
	return f, nil
}

// URLs returns the member base URLs in membership order.
func (f *Fleet) URLs() []string {
	out := make([]string, len(f.Members))
	for i, m := range f.Members {
		out[i] = m.URL
	}
	return out
}

// Close drains and shuts every member down.
func (f *Fleet) Close() {
	for _, m := range f.Members {
		m.Close()
	}
}
