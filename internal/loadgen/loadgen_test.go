package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gossip/internal/server"
)

// TestRunAgainstLocalServer is the load generator's own end-to-end
// smoke at unit scale: all contracts hold against a real server.
func TestRunAgainstLocalServer(t *testing.T) {
	l, err := StartLocal(server.Config{Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:  l.URL,
		Clients:  6,
		Requests: 4,
		Surge:    true,
		SurgeN:   128,
		BaseSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("%v\nreport: %+v", err, rep)
	}
	// 6 surge + 6*4 mix + 6 sweep + 6 estimate posts, then one verify
	// replay per mix, sweep and estimate entry.
	wantReqs := 6 + 6*4 + 6*len(DefaultSweeps(7)) + 6*len(DefaultEstimates(7)) +
		len(DefaultMix(7)) + len(DefaultSweeps(7)) + len(DefaultEstimates(7))
	if rep.Requests != wantReqs {
		t.Fatalf("requests = %d, want %d", rep.Requests, wantReqs)
	}
	if rep.DistinctKeys == 0 || rep.CacheMisses != rep.DistinctKeys {
		t.Fatalf("misses %d != distinct keys %d (coalescing broken?)", rep.CacheMisses, rep.DistinctKeys)
	}
	if rep.CacheHits != rep.Requests-rep.CacheMisses {
		t.Fatalf("hits %d + misses %d != requests %d", rep.CacheHits, rep.CacheMisses, rep.Requests)
	}
	if rep.PeakInFlight < 2 {
		t.Fatalf("peak in-flight %d, want >= 2 with a surge wave", rep.PeakInFlight)
	}
	if rep.RoundsSimulated <= 0 || rep.Throughput <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "loadgen: OK") {
		t.Fatalf("report rendering: %s", buf.String())
	}
}

// TestRunFlagsNondeterminism wires loadgen against a server whose cache
// is disabled-by-eviction (size 1) so identical requests re-execute:
// still deterministic, so no violations — but the run must see repeat
// misses and flag them, proving the detector has teeth.
func TestRunFlagsRepeatMisses(t *testing.T) {
	l, err := StartLocal(server.Config{Pool: 2, CacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rep, err := Run(context.Background(), Options{
		BaseURL:  l.URL,
		Clients:  1,
		Requests: 2 * len(DefaultMix(3)), // two sequential passes over the mix
		BaseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatalf("size-1 cache produced no repeat-miss violations: %+v", rep)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "cache miss #") || strings.Contains(v, "want hit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not mention repeat misses: %v", rep.Violations)
	}
}

func TestRunRejectsMissingBaseURL(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("Run accepted empty BaseURL")
	}
}

func TestParseStreamRejectsGarbage(t *testing.T) {
	for _, body := range []string{
		"",
		"not json\n",
		`{"schema_version":2,"event":"progress","round":1}` + "\n", // no accepted first
		`{"schema_version":99,"event":"accepted","request_key":"k"}` + "\n",
		`{"schema_version":1,"event":"accepted","request_key":"k"}` + "\n", // stale schema
		`{"schema_version":2,"event":"accepted","request_key":"k"}` + "\n", // no terminator
	} {
		if _, _, _, err := parseStream([]byte(body)); err == nil {
			t.Fatalf("parseStream accepted %q", body)
		}
	}
	key, rounds, errEvent, err := parseStream([]byte(
		`{"schema_version":2,"event":"accepted","request_key":"k"}` + "\n" +
			`{"schema_version":2,"event":"error","error":{"message":"boom"}}` + "\n"))
	if err != nil || key != "k" || rounds != 0 || errEvent != "boom" {
		t.Fatalf("error stream: %q %d %q %v", key, rounds, errEvent, err)
	}
	// An estimate terminator is a valid stream end.
	key, _, errEvent, err = parseStream([]byte(
		`{"schema_version":2,"event":"accepted","request_key":"e"}` + "\n" +
			`{"schema_version":2,"event":"estimate","best":{"loss":0.2,"churn":0,"scale":1}}` + "\n"))
	if err != nil || key != "e" || errEvent != "" {
		t.Fatalf("estimate stream: %q %q %v", key, errEvent, err)
	}
}

// TestSelfCheck runs the full two-server check at unit scale.
func TestSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	err := SelfCheck(context.Background(), SelfCheckOptions{
		Clients:  6,
		Requests: 3,
		SurgeN:   128,
		Seed:     5,
		Pools:    [2]int{1, 4},
		Out:      &buf,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"selfcheck: OK", "loadgen: OK", "pool sizes 1 and 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("selfcheck output missing %q:\n%s", want, out)
		}
	}
}
