package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"gossip/internal/server"
)

// SelfCheckOptions configure the end-to-end service check behind
// `gossipd -selfcheck` and the CI load-smoke job.
type SelfCheckOptions struct {
	// Clients and Requests shape the load phase (defaults 16 and 4).
	Clients  int
	Requests int
	// MinPeakInFlight fails the check when the surge never reached this
	// many concurrent outstanding jobs (<=0: Clients - Clients/10,
	// leaving slack for scheduler jitter between posting and completing).
	MinPeakInFlight int
	// SurgeN is the surge job graph size (<=0: 2048).
	SurgeN int
	// Seed decorrelates runs (default 1).
	Seed uint64
	// MaxWall fails the check when the load phase (surge + mix against
	// server A) takes longer than this wall-clock budget. Zero means no
	// budget — CI sets one so transport or scheduling regressions fail
	// the smoke instead of silently slowing it.
	MaxWall time.Duration
	// Pools are the two server pool sizes whose responses are
	// cross-compared byte for byte. They must differ for the comparison
	// to mean anything, so the defaults are fixed at 2 and 6 rather
	// than anything GOMAXPROCS-derived (which coincides with 2 on
	// 2-vCPU CI runners, silently degrading the gate to a same-size
	// comparison).
	Pools [2]int
	// Out receives the progress report (default: discard).
	Out io.Writer
}

func (o SelfCheckOptions) withDefaults() SelfCheckOptions {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Requests <= 0 {
		o.Requests = 4
	}
	if o.MinPeakInFlight <= 0 {
		o.MinPeakInFlight = o.Clients - o.Clients/10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Pools[0] <= 0 {
		o.Pools[0] = 2
	}
	if o.Pools[1] <= 0 {
		o.Pools[1] = 3 * o.Pools[0]
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// SelfCheck boots gossipd in-process and proves the service contract
// under load: it drives Clients concurrent closed-loop clients (a
// barrier-synchronized unique-seed surge wave, then the fixed DefaultMix
// including the lossy/churny fault-spec job), requiring every response
// 2xx, byte-identical bodies per request key, at most one cache miss per
// key, and peak concurrency >= MinPeakInFlight — then replays the mix
// against a second server with a different pool size and requires the
// response bodies to match the first server's byte for byte.
func SelfCheck(ctx context.Context, o SelfCheckOptions) error {
	o = o.withDefaults()

	a, err := StartLocal(server.Config{Pool: o.Pools[0]})
	if err != nil {
		return err
	}
	defer a.Close()
	poolA := a.Server.Metrics().PoolSize
	fmt.Fprintf(o.Out, "selfcheck: server A up at %s (pool=%d)\n", a.URL, poolA)

	loadStart := time.Now()
	rep, err := Run(ctx, Options{
		BaseURL:  a.URL,
		Clients:  o.Clients,
		Requests: o.Requests,
		Surge:    true,
		SurgeN:   o.SurgeN,
		BaseSeed: o.Seed,
	})
	if err != nil {
		return fmt.Errorf("selfcheck: load phase: %w", err)
	}
	loadWall := time.Since(loadStart)
	rep.Fprint(o.Out)
	if err := rep.Err(); err != nil {
		return err
	}
	if rep.PeakInFlight < o.MinPeakInFlight {
		return fmt.Errorf("selfcheck: peak in-flight %d below the required %d (clients %d)",
			rep.PeakInFlight, o.MinPeakInFlight, o.Clients)
	}
	if o.MaxWall > 0 && loadWall > o.MaxWall {
		return fmt.Errorf("selfcheck: load phase took %v, over the %v wall-clock budget",
			loadWall.Round(time.Millisecond), o.MaxWall)
	}
	fmt.Fprintf(o.Out, "selfcheck: load phase wall clock %v (budget %v)\n",
		loadWall.Round(time.Millisecond), o.MaxWall)

	// Cross-server determinism: a differently-sized pool must produce
	// the same bytes for every mix job.
	b, err := StartLocal(server.Config{Pool: o.Pools[1]})
	if err != nil {
		return err
	}
	defer b.Close()
	poolB := b.Server.Metrics().PoolSize
	fmt.Fprintf(o.Out, "selfcheck: server B up at %s (pool=%d)\n", b.URL, poolB)
	repB, err := Run(ctx, Options{
		BaseURL:  b.URL,
		Clients:  2,
		Requests: (len(DefaultMix(o.Seed)) + 1) / 2,
		BaseSeed: o.Seed,
	})
	if err != nil {
		return fmt.Errorf("selfcheck: cross-server phase: %w", err)
	}
	if err := repB.Err(); err != nil {
		return err
	}
	// Server B ran exactly the mix, server A ran the mix and more: every
	// key B computed must exist on A and match byte for byte — a missing
	// key would mean the two phases did not run the same jobs, which is
	// itself a bug worth failing on.
	keys := make([]string, 0, len(repB.Bodies))
	for k := range repB.Bodies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bodyA, ok := rep.Bodies[k]
		if !ok {
			return fmt.Errorf("selfcheck: server B computed key %s that server A never saw", k)
		}
		if !bytes.Equal(bodyA, repB.Bodies[k]) {
			return fmt.Errorf("selfcheck: pool %d and pool %d disagree on key %s", poolA, poolB, k)
		}
	}
	fmt.Fprintf(o.Out, "selfcheck: OK — %d keys byte-identical across pool sizes %d and %d\n",
		len(keys), poolA, poolB)
	return nil
}
