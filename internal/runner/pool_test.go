package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(ctx, func() error {
				c := cur.Add(1)
				for {
					old := peak.Load()
					if c <= old || peak.CompareAndSwap(old, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeded pool size 3", got)
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d after drain, want 0", p.InUse())
	}
}

// TestPoolAcquireCancelledWhileQueued is the gossipd drain semantics: a
// waiter whose context dies while queued gets the context error and never
// holds a slot.
func TestPoolAcquireCancelledWhileQueued(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- p.Acquire(ctx) }()
	time.Sleep(5 * time.Millisecond) // let the waiter queue
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Acquire = %v, want context.Canceled", err)
	}
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", p.InUse())
	}
}

// TestPoolAcquireDeadContextLosesRace pins that an already-cancelled
// context never acquires, even with free slots.
func TestPoolAcquireDeadContextLosesRace(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on dead ctx = %v, want context.Canceled", err)
	}
	if err := p.Do(ctx, func() error { return errors.New("ran") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on dead ctx = %v, want context.Canceled", err)
	}
}

func TestPoolDoPropagatesError(t *testing.T) {
	p := NewPool(1)
	want := errors.New("boom")
	if err := p.Do(context.Background(), func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do = %v, want %v", err, want)
	}
	if p.InUse() != 0 {
		t.Fatalf("slot leaked after Do error: InUse = %d", p.InUse())
	}
}

func TestPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewPool(1).Release()
}

func TestPoolDefaultSize(t *testing.T) {
	if got := NewPool(0).Size(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Size = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
