package runner

import (
	"context"
	"runtime"
)

// Pool is a bounded execution pool: a fixed number of slots that
// goroutines acquire before doing CPU-heavy work and release after. It is
// the concurrency cap shared by the experiment grid scheduler (Run) and
// long-lived services (gossipd), where jobs queue on Acquire and a drain
// or client-gone context cancels the wait — queued work is abandoned,
// running work always finishes and releases its slot.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with the given number of slots (<=0 means
// GOMAXPROCS).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// Size is the slot count.
func (p *Pool) Size() int { return cap(p.slots) }

// InUse is the number of currently held slots (racy by nature; for
// metrics and tests, not for synchronization).
func (p *Pool) InUse() int { return len(p.slots) }

// Acquire blocks until a slot is free or ctx is done, whichever first. A
// ctx that is already done wins even when a slot is free, so a drained
// service never starts new work.
func (p *Pool) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired by Acquire. Releasing without a matching
// Acquire is a programming error and panics.
func (p *Pool) Release() {
	select {
	case <-p.slots:
	default:
		panic("runner: Pool.Release without Acquire")
	}
}

// Do runs fn while holding a slot: Acquire, fn, Release. The fn runs on
// the calling goroutine; the error is Acquire's (ctx cancellation while
// queued) or fn's.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return fn()
}
