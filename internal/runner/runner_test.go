package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"gossip/internal/graphgen"
)

// synthGrid is a small stochastic grid whose output depends only on the
// coordinate-derived seeds.
func synthGrid() Grid {
	return Grid{
		Exp:    "SYNTH",
		Cells:  []string{"a", "b", "c"},
		Trials: 4,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			rng := graphgen.NewRand(seed)
			return Sample{
				Values: map[string]float64{"x": float64(rng.IntN(1 << 20))},
				Labels: map[string]string{"coord": c.String()},
			}, nil
		},
	}
}

func TestDeriveSeedStable(t *testing.T) {
	c := Coord{Exp: "E7", Cell: "clique(16,ℓ=8)", CellIndex: 1, Trial: 3}
	a := DeriveSeed(42, c)
	b := DeriveSeed(42, c)
	if a != b {
		t.Fatalf("DeriveSeed not stable: %d != %d", a, b)
	}
	if a == 0 {
		t.Fatal("DeriveSeed returned 0")
	}
	// Any coordinate perturbation must change the seed.
	perturbed := []Coord{
		{Exp: "E8", Cell: c.Cell, CellIndex: c.CellIndex, Trial: c.Trial},
		{Exp: c.Exp, Cell: "other", CellIndex: c.CellIndex, Trial: c.Trial},
		{Exp: c.Exp, Cell: c.Cell, CellIndex: 2, Trial: c.Trial},
		{Exp: c.Exp, Cell: c.Cell, CellIndex: c.CellIndex, Trial: 4},
	}
	for _, p := range perturbed {
		if DeriveSeed(42, p) == a {
			t.Fatalf("seed collision between %v and %v", c, p)
		}
	}
	if DeriveSeed(43, c) == a {
		t.Fatal("seed ignores base")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []Cell
	for _, workers := range []int{1, 2, 8} {
		got, err := Run(context.Background(), synthGrid(), Options{BaseSeed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestRunAggregation(t *testing.T) {
	cells, err := Run(context.Background(), Grid{
		Exp:    "AGG",
		Cells:  []string{"only"},
		Trials: 3,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			s := Sample{Values: map[string]float64{"v": float64(c.Trial + 1)}}
			if c.Trial == 0 {
				s.Values["once"] = 7
				s.Labels = map[string]string{"tag": "first"}
			}
			return s, nil
		},
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if got := c.Values("v"); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Values order broken: %v", got)
	}
	if m := c.Mean("v"); m != 2 {
		t.Fatalf("Mean = %v, want 2", m)
	}
	if m := c.Min("v"); m != 1 {
		t.Fatalf("Min = %v, want 1", m)
	}
	if got := c.Values("once"); !reflect.DeepEqual(got, []float64{7}) {
		t.Fatalf("sparse metric: %v", got)
	}
	if l := c.Label("tag"); l != "first" {
		t.Fatalf("Label = %q", l)
	}
	if l := c.Label("absent"); l != "" {
		t.Fatalf("absent label = %q", l)
	}
	if c.Mean("absent") != 0 || c.Min("absent") != 0 {
		t.Fatal("absent metric aggregates should be 0")
	}
}

func TestRunTrialErrorDeterministic(t *testing.T) {
	g := Grid{
		Exp:    "ERR",
		Cells:  []string{"c0", "c1", "c2"},
		Trials: 3,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			if c.CellIndex >= 1 {
				return Sample{}, fmt.Errorf("boom cell=%d trial=%d", c.CellIndex, c.Trial)
			}
			return V(map[string]float64{"x": 1}), nil
		},
	}
	var first string
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), g, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("error not deterministic: %q vs %q", err.Error(), first)
		}
	}
	if first != "ERR/c1#0: boom cell=1 trial=0" {
		t.Fatalf("unexpected first error %q", first)
	}
}

func TestRunContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	started := make(chan struct{}, 64)
	_, err := Run(ctx, Grid{
		Exp:    "SLOW",
		Cells:  []string{"a", "b"},
		Trials: 8,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			started <- struct{}{}
			<-ctx.Done()
			return Sample{}, ctx.Err()
		},
	}, Options{Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if len(started) == 0 {
		t.Fatal("no trial ever started")
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Run(ctx, Grid{
		Exp:    "CANCELLED",
		Cells:  []string{"a"},
		Trials: 4,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			ran.Add(1)
			return V(map[string]float64{"x": 1}), nil
		},
	}, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d trials ran after cancellation", n)
	}
}

func TestRunProgress(t *testing.T) {
	var calls []int
	_, err := Run(context.Background(), synthGrid(), Options{
		Workers: 3,
		Progress: func(done, total int) {
			if total != 12 {
				t.Errorf("total = %d, want 12", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 12 {
		t.Fatalf("progress called %d times, want 12", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress out of order: %v", calls)
		}
	}
}

func TestRunEmptyAndInvalidGrids(t *testing.T) {
	if _, err := Run(context.Background(), Grid{Exp: "X", Cells: []string{"a"}}, Options{}); err == nil {
		t.Fatal("nil trial function accepted")
	}
	cells, err := Run(context.Background(), Grid{
		Exp: "X",
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			return Sample{}, nil
		},
	}, Options{})
	if err != nil || cells != nil {
		t.Fatalf("empty grid: cells=%v err=%v", cells, err)
	}
}

func TestRunDefaultsTrialsToOne(t *testing.T) {
	cells, err := Run(context.Background(), Grid{
		Exp:   "ONE",
		Cells: []string{"a"},
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			return V(map[string]float64{"x": 5}), nil
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || len(cells[0].Samples) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
}

// spin burns deterministic CPU so the parallel benchmarks measure real
// worker-pool speedup rather than scheduling overhead.
func spin(seed uint64, iters int) float64 {
	rng := graphgen.NewRand(seed)
	acc := 0.0
	for i := 0; i < iters; i++ {
		acc += float64(rng.IntN(1000))
	}
	return acc
}

func benchGrid(workers int, b *testing.B) {
	g := Grid{
		Exp:    "BENCH",
		Cells:  []string{"a", "b", "c", "d"},
		Trials: 8,
		Run: func(ctx context.Context, c Coord, seed uint64) (Sample, error) {
			return V(map[string]float64{"x": spin(seed, 200000)}), nil
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g, Options{BaseSeed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridWorkers1(b *testing.B) { benchGrid(1, b) }
func BenchmarkGridWorkers8(b *testing.B) { benchGrid(8, b) }
