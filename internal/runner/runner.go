// Package runner schedules declarative experiment trial grids across a
// worker pool. A grid is a set of cells (data points) × trials; the runner
// fans the trials over GOMAXPROCS goroutines, derives each trial's RNG
// seed from a stable hash of its coordinates, and aggregates samples in
// declaration order — so results are bit-identical regardless of worker
// count or completion order.
package runner

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"gossip/internal/stats"
)

// Coord identifies one trial by its grid coordinates.
type Coord struct {
	// Exp is the experiment ID (e.g. "E7").
	Exp string
	// Cell names the data point (e.g. "clique(16,ℓ=8)").
	Cell string
	// CellIndex is the cell's position in Grid.Cells.
	CellIndex int
	// Trial is the repetition index within the cell.
	Trial int
}

func (c Coord) String() string {
	return fmt.Sprintf("%s/%s#%d", c.Exp, c.Cell, c.Trial)
}

// DeriveSeed hashes the base seed and trial coordinates (FNV-1a) into the
// trial's RNG seed. The seed depends only on the coordinates, never on
// scheduling, so a grid is reproducible at any worker count; distinct
// coordinates get decorrelated streams.
func DeriveSeed(base uint64, c Coord) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], base)
	h.Write(buf[:])
	h.Write([]byte(c.Exp))
	h.Write([]byte{0})
	h.Write([]byte(c.Cell))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(c.CellIndex))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(c.Trial))
	h.Write(buf[:])
	s := h.Sum64()
	if s == 0 {
		s = 1 // 0 means "use default" to several seed consumers
	}
	return s
}

// Sample is the outcome of one trial: named numeric metrics plus optional
// string labels (e.g. a winner name or a rendered sparkline).
type Sample struct {
	Values map[string]float64
	Labels map[string]string
}

// V is shorthand for a values-only sample.
func V(kv map[string]float64) Sample { return Sample{Values: kv} }

// TrialFunc runs one trial. It must derive all randomness from seed and
// must not depend on other trials; the runner may invoke it from any
// worker in any order.
type TrialFunc func(ctx context.Context, c Coord, seed uint64) (Sample, error)

// Grid is a declarative trial grid: Cells × Trials invocations of Run.
type Grid struct {
	// Exp is the experiment ID, mixed into every trial seed.
	Exp string
	// Cells names the data points, one table row (or note) each.
	Cells []string
	// Trials is the repetition count per cell (<=0 means 1).
	Trials int
	// Run executes one trial.
	Run TrialFunc
}

// Options configure grid execution.
type Options struct {
	// BaseSeed is the experiment master seed all trial seeds derive from.
	BaseSeed uint64
	// Workers caps the goroutine pool (<=0 means GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after every finished trial with
	// the completed and total trial counts (serialized by the runner).
	Progress func(done, total int)
}

// Cell is one aggregated data point: the samples of all its trials, in
// trial order.
type Cell struct {
	Name    string
	Index   int
	Samples []Sample
}

// Values collects the named metric across trials, in trial order,
// skipping samples that did not report it.
func (c *Cell) Values(metric string) []float64 {
	out := make([]float64, 0, len(c.Samples))
	for _, s := range c.Samples {
		if v, ok := s.Values[metric]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Mean averages the named metric across trials (0 when never reported).
func (c *Cell) Mean(metric string) float64 { return stats.Mean(c.Values(metric)) }

// Min returns the smallest reported value of the metric (0 when never
// reported). Useful for all-trials-hold booleans encoded as 0/1.
func (c *Cell) Min(metric string) float64 {
	vs := c.Values(metric)
	if len(vs) == 0 {
		return 0
	}
	min := vs[0]
	for _, v := range vs[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Label returns the first reported value of the named label ("" when
// never reported).
func (c *Cell) Label(key string) string {
	for _, s := range c.Samples {
		if v, ok := s.Labels[key]; ok {
			return v
		}
	}
	return ""
}

// Run executes the grid. Trials are scheduled across the worker pool;
// results are aggregated per cell in (cell, trial) order. On trial
// failure the rest of the grid still runs and the first error in grid
// order is returned, so error reporting is schedule-independent. Run
// stops early (returning ctx.Err) when the context is cancelled or times
// out.
func Run(ctx context.Context, g Grid, opt Options) ([]Cell, error) {
	if g.Run == nil {
		return nil, errors.New("runner: grid has no trial function")
	}
	trials := g.Trials
	if trials <= 0 {
		trials = 1
	}
	total := len(g.Cells) * trials
	if total == 0 {
		return nil, nil
	}
	samples := make([][]Sample, len(g.Cells))
	errs := make([][]error, len(g.Cells))
	for i := range samples {
		samples[i] = make([]Sample, trials)
		errs[i] = make([]error, trials)
	}

	// One goroutine per trial, gated by the bounded pool: at most
	// opt.Workers trials run at once, and a cancelled context aborts the
	// feed while trials already holding a slot run to completion — the
	// same queue/drain semantics gossipd leans on.
	pool := NewPool(opt.Workers)
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
feed:
	for ci := range g.Cells {
		for ti := 0; ti < trials; ti++ {
			if err := pool.Acquire(ctx); err != nil {
				break feed
			}
			wg.Add(1)
			go func(cell, trial int) {
				defer wg.Done()
				defer pool.Release()
				c := Coord{Exp: g.Exp, Cell: g.Cells[cell], CellIndex: cell, Trial: trial}
				s, err := g.Run(ctx, c, DeriveSeed(opt.BaseSeed, c))
				if err != nil {
					// Keep running the remaining trials: trials are pure
					// functions of their coordinates, so finishing the grid
					// (rather than cancelling) keeps the reported error —
					// the first in grid order — schedule-independent.
					errs[cell][trial] = fmt.Errorf("%s: %w", c, err)
				} else {
					samples[cell][trial] = s
				}
				// Errored trials still finished; only trials skipped by a
				// cancelled context don't count.
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, total)
					mu.Unlock()
				}
			}(ci, ti)
		}
	}
	wg.Wait()

	// Report the first real trial error in grid order (deterministic:
	// trials are pure functions of their coordinates, so the error set is
	// schedule-independent). Context errors recorded by draining workers
	// are subsumed by the ctx.Err check below.
	for ci := range errs {
		for _, err := range errs[ci] {
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cells := make([]Cell, len(g.Cells))
	for i, name := range g.Cells {
		cells[i] = Cell{Name: name, Index: i, Samples: samples[i]}
	}
	return cells, nil
}
