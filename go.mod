module gossip

go 1.24
