# Targets mirror the CI jobs in .github/workflows/ci.yml so local and CI
# invocations stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-json fmt vet experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI bench smoke. It exercises the
# parallel experiment runner (BenchmarkAblationGridWorkers) alongside the
# per-experiment and substrate benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Substrate microbenchmarks (engine, conductance, spanner, large-scale
# event-engine runs) as a JSON artifact: ns/op, allocs/op and the rounds
# metric per benchmark. CI uploads BENCH_sim.json on every push so the
# perf trajectory is tracked across PRs.
bench-json:
	$(GO) test -bench='^(BenchmarkSimPushPullRound|BenchmarkSimLargeScale|BenchmarkConductance|BenchmarkSpannerBuild)' \
		-benchtime=1x -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson > BENCH_sim.json

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Regenerate the paper's evaluation tables across all cores and drop JSON
# artifacts in ./results.
experiments:
	$(GO) run ./cmd/experiments -progress -out results

clean:
	rm -rf results
