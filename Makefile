# Targets mirror the CI jobs in .github/workflows/ci.yml so local and CI
# invocations stay in lockstep.

GO ?= go

# Drivers checked by the determinism target: every protocol registered in
# internal/gossip (keep in sync with gossip.Names()).
DRIVERS := auto dtg echo election flood pattern push-pull rr spanner superstep

# Ratcheted total-coverage minimum for `make cover`: raised at the
# /v1/estimates PR, which measured 85.3% (scheduler-dependent test
# paths move a few tenths, so the floor sits just under the measured
# value). Raise it when coverage improves; never lower it without a
# written reason.
COVER_MIN := 84.5

.PHONY: all build test race bench bench-json bench-baseline bench-compare \
	determinism cover fuzz-smoke staticcheck fmt vet experiments serve \
	load-smoke distributed-smoke netcheck docs docs-check lint-docs clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI bench smoke. It exercises the
# parallel experiment runner (BenchmarkAblationGridWorkers) alongside the
# per-experiment and substrate benchmarks, including the n=10⁶
# BenchmarkSimMillionNode gate.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Substrate microbenchmarks (engine, conductance, spanner, large-scale
# and million-node event-engine runs) as a JSON artifact: ns/op,
# allocs/op and the rounds metric per benchmark. CI uploads
# BENCH_sim.json on every push so the perf trajectory is tracked across
# PRs, then gates it against the committed baseline (bench-compare).
bench-json:
	$(GO) test -bench='^(BenchmarkSimPushPullRound|BenchmarkSimLargeScale|BenchmarkSimLossyPushPull|BenchmarkSimMillionNode|BenchmarkConductance|BenchmarkSpannerBuild|BenchmarkServerThroughput|BenchmarkServerCachedHit|BenchmarkSweepWarmStart|BenchmarkDistributedShardMerge|BenchmarkDistributedCoordinator|BenchmarkEstimateFit)' \
		-benchtime=1x -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson > BENCH_sim.json

# Refresh the committed regression baseline from the current machine.
# Run this (and commit BENCH_baseline.json) when landing an intentional
# perf change or when CI hardware shifts.
bench-baseline: bench-json
	cp BENCH_sim.json BENCH_baseline.json

# The CI bench-regression gate: fail when ns/op or allocs/op regress
# more than 25% against the committed baseline on matched benchmarks.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json BENCH_sim.json

# One deterministic fault schedule exercised by the determinism target:
# loss + amnesic churn + a link flap + a crash batch, all valid on the
# 16-node dumbbell every driver runs on.
FAULT_SPEC := loss=0.15;churn=2:6-14:amnesia;flap=0-1:3-8;crash=9:5

# Worker-count determinism: every registered driver must produce
# byte-identical CLI output with -workers 1 and -workers 8 — on a benign
# network AND under the adversity schedule above — the experiment grid
# must be schedule-independent (-parallel 1 vs 8), and the cross-protocol
# invariant harness must hold. Shared by CI and local dev.
determinism:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/gossipsim ./cmd/gossipsim; \
	for algo in $(DRIVERS); do \
		$$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 1 > $$tmp/w1.out; \
		$$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 8 > $$tmp/w8.out; \
		cmp $$tmp/w1.out $$tmp/w8.out || { echo "determinism: $$algo diverges between -workers 1 and -workers 8" >&2; exit 1; }; \
		echo "determinism: $$algo OK (workers 1 == 8)"; \
		rc=0; $$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 1 -fault-spec '$(FAULT_SPEC)' > $$tmp/f1.out || rc=$$?; \
		[ $$rc -eq 0 ] || [ $$rc -eq 2 ] || { echo "determinism: $$algo errored (exit $$rc) under the fault schedule" >&2; exit 1; }; \
		rc=0; $$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 8 -fault-spec '$(FAULT_SPEC)' > $$tmp/f8.out || rc=$$?; \
		[ $$rc -eq 0 ] || [ $$rc -eq 2 ] || { echo "determinism: $$algo errored (exit $$rc) under the fault schedule" >&2; exit 1; }; \
		cmp $$tmp/f1.out $$tmp/f8.out || { echo "determinism: $$algo diverges under the fault schedule" >&2; exit 1; }; \
		echo "determinism: $$algo OK under faults (workers 1 == 8)"; \
	done; \
	$(GO) run ./cmd/experiments -id E7 -quick -parallel 1 -json > $$tmp/e7w1.json; \
	$(GO) run ./cmd/experiments -id E7 -quick -parallel 8 -json > $$tmp/e7w8.json; \
	cmp $$tmp/e7w1.json $$tmp/e7w8.json && echo "determinism: experiment grid OK (parallel 1 == 8)"; \
	$(GO) test -count=1 ./internal/invariant && echo "determinism: invariant harness OK (10 drivers x families x {benign,lossy,churny})"

# Total-statement coverage with a ratcheted minimum: fails below
# COVER_MIN, the percentage recorded when this gate merged. CI runs it;
# refresh the floor upward as coverage grows.
cover:
	@$(GO) test -count=1 -coverprofile=cover.out ./... > cover-test.log 2>&1 || \
		{ echo "cover: tests failed:" >&2; grep -v '^ok ' cover-test.log >&2; exit 1; }; \
	total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the ratcheted minimum $(COVER_MIN)%" >&2; exit 1; }

# Short fuzz smoke of the structured-input parsers/builders (the fault
# schedule DSL, the CSR builder and the /v1/estimates request
# validator); CI-friendly seconds, not hours.
fuzz-smoke:
	$(GO) test ./internal/adversity -fuzz FuzzFaultSpec -fuzztime 10s -run '^$$'
	$(GO) test ./internal/graph -fuzz FuzzCSRBuilder -fuzztime 10s -run '^$$'
	$(GO) test ./internal/server -fuzz FuzzEstimateValidate -fuzztime 10s -run '^$$'

# Static analysis beyond go vet. Requires staticcheck on PATH
# (go install honnef.co/go/tools/cmd/staticcheck@latest); CI installs it.
staticcheck:
	staticcheck ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Regenerate the paper's evaluation tables across all cores and drop JSON
# artifacts in ./results.
experiments:
	$(GO) run ./cmd/experiments -progress -out results

# Run the simulation service locally (SIGINT/SIGTERM drain gracefully).
serve:
	$(GO) run ./cmd/gossipd -addr 127.0.0.1:8080

# The CI load-smoke gate: build gossipd with the race detector, boot two
# in-process servers with different pool sizes, and drive 220 concurrent
# closed-loop clients through the fixed request mix (a barrier-
# synchronized unique-seed surge wave, then the DefaultMix including the
# lossy/churny fault-spec job). Fails on any non-200, any repeat cache
# miss for an identical request, any nondeterministic response body, a
# cross-pool body mismatch, or peak concurrency below 200 in-flight jobs.
load-smoke:
	$(GO) run -race ./cmd/gossipd -selfcheck -clients 220 -requests 4 -min-peak 200 -max-wall 5m

# Real-network cross-validation: run push-pull and flood on a live
# goroutine mesh (gossip.RunNet over transport.ChanMesh) and check every
# trial's (rounds, messages) against the simulator's 16-replica
# statistical envelope. The verdict is statistical — each trial must
# complete and land inside the per-level bands, with at most one outlier
# per five trials tolerated.
netcheck:
	$(GO) test -count=1 -run 'TestNetCheck' ./internal/netcheck

# The CI distributed-smoke gate: build gossipd once, launch a 3-member
# fleet (shared -peers membership; any member coordinates) plus a
# single-process reference server on fixed loopback ports, then run
# `gossipd -distcheck`, which byte-compares every fleet response against
# the reference: the 6-driver mix rotated across members, one n=2^18
# push-pull job sharded over 2 workers, and a cross-member
# cache-forwarding probe that must come back X-Gossipd-Cache: hit.
# A second step runs a 2-process gossipnode fleet over loopback TCP —
# real sockets, real wall-clock rounds — whose lead exits 0 only when
# the fleet's spread curve lands inside the simulator's envelope.
DIST_REF  := 127.0.0.1:9700
DIST_PEERS := 127.0.0.1:9701,127.0.0.1:9702,127.0.0.1:9703
NODE_PEERS := 127.0.0.1:9711,127.0.0.1:9712

distributed-smoke:
	@set -e; \
	tmp=$$(mktemp -d); pids=""; \
	trap 'kill $$pids 2>/dev/null || :; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/gossipd ./cmd/gossipd; \
	for peer in $$(echo '$(DIST_PEERS)' | tr ',' ' '); do \
		$$tmp/gossipd -addr $$peer -peers '$(DIST_PEERS)' -advertise $$peer -max-n 262144 & pids="$$pids $$!"; \
	done; \
	$$tmp/gossipd -addr $(DIST_REF) -max-n 262144 & pids="$$pids $$!"; \
	for peer in $(DIST_REF) $$(echo '$(DIST_PEERS)' | tr ',' ' '); do \
		ok=""; \
		for i in $$(seq 1 100); do \
			if curl -sf http://$$peer/healthz >/dev/null 2>&1; then ok=1; break; fi; \
			sleep 0.2; \
		done; \
		[ -n "$$ok" ] || { echo "distributed-smoke: gossipd at $$peer never became healthy" >&2; exit 1; }; \
	done; \
	$$tmp/gossipd -distcheck -fleet '$(DIST_PEERS)' -reference $(DIST_REF) -shards 2 -shard-n 262144; \
	$(GO) build -o $$tmp/gossipnode ./cmd/gossipnode; \
	$$tmp/gossipnode -index 1 -peers '$(NODE_PEERS)' -graph grid -n 49 -seed 11 & pids="$$pids $$!"; \
	$$tmp/gossipnode -index 0 -peers '$(NODE_PEERS)' -graph grid -n 49 -seed 11; \
	echo "distributed-smoke: gossipnode TCP fleet landed inside the simulator envelope"

# Regenerate the generated documentation layer (docs/DRIVERS.md from the
# driver registry, docs/API.md from the internal/server/api doc
# comments). Run after changing a driver registration or the wire schema
# and commit the result; docs-check (CI and TestCommittedDocsAreCurrent)
# fails when the committed files drift from the code.
docs:
	$(GO) run ./cmd/gossipdoc

docs-check:
	$(GO) run ./cmd/gossipdoc -check

# Every package must carry a package doc comment — the godoc surface the
# generated docs and pkg.go.dev render from.
lint-docs:
	@out=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep . || :); \
	if [ -n "$$out" ]; then \
		echo "lint-docs: packages missing a package doc comment:"; echo "$$out"; exit 1; \
	fi; \
	echo "lint-docs: every package documented"

clean:
	rm -rf results
