# Targets mirror the CI jobs in .github/workflows/ci.yml so local and CI
# invocations stay in lockstep.

GO ?= go

# Drivers checked by the determinism target: every protocol registered in
# internal/gossip (keep in sync with gossip.Names()).
DRIVERS := auto dtg flood pattern push-pull rr spanner superstep

.PHONY: all build test race bench bench-json bench-baseline bench-compare \
	determinism staticcheck fmt vet experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI bench smoke. It exercises the
# parallel experiment runner (BenchmarkAblationGridWorkers) alongside the
# per-experiment and substrate benchmarks, including the n=10⁶
# BenchmarkSimMillionNode gate.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Substrate microbenchmarks (engine, conductance, spanner, large-scale
# and million-node event-engine runs) as a JSON artifact: ns/op,
# allocs/op and the rounds metric per benchmark. CI uploads
# BENCH_sim.json on every push so the perf trajectory is tracked across
# PRs, then gates it against the committed baseline (bench-compare).
bench-json:
	$(GO) test -bench='^(BenchmarkSimPushPullRound|BenchmarkSimLargeScale|BenchmarkSimMillionNode|BenchmarkConductance|BenchmarkSpannerBuild)' \
		-benchtime=1x -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson > BENCH_sim.json

# Refresh the committed regression baseline from the current machine.
# Run this (and commit BENCH_baseline.json) when landing an intentional
# perf change or when CI hardware shifts.
bench-baseline: bench-json
	cp BENCH_sim.json BENCH_baseline.json

# The CI bench-regression gate: fail when ns/op or allocs/op regress
# more than 25% against the committed baseline on matched benchmarks.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json BENCH_sim.json

# Worker-count determinism: every registered driver must produce
# byte-identical CLI output with -workers 1 and -workers 8, and the
# experiment grid must be schedule-independent (-parallel 1 vs 8).
# Shared by CI and local dev.
determinism:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/gossipsim ./cmd/gossipsim; \
	for algo in $(DRIVERS); do \
		$$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 1 > $$tmp/w1.out; \
		$$tmp/gossipsim -graph dumbbell -n 8 -latency 12 -algo $$algo -seed 3 -analyze=false -workers 8 > $$tmp/w8.out; \
		cmp $$tmp/w1.out $$tmp/w8.out || { echo "determinism: $$algo diverges between -workers 1 and -workers 8" >&2; exit 1; }; \
		echo "determinism: $$algo OK (workers 1 == 8)"; \
	done; \
	$(GO) run ./cmd/experiments -id E7 -quick -parallel 1 -json > $$tmp/e7w1.json; \
	$(GO) run ./cmd/experiments -id E7 -quick -parallel 8 -json > $$tmp/e7w8.json; \
	cmp $$tmp/e7w1.json $$tmp/e7w8.json && echo "determinism: experiment grid OK (parallel 1 == 8)"

# Static analysis beyond go vet. Requires staticcheck on PATH
# (go install honnef.co/go/tools/cmd/staticcheck@latest); CI installs it.
staticcheck:
	staticcheck ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Regenerate the paper's evaluation tables across all cores and drop JSON
# artifacts in ./results.
experiments:
	$(GO) run ./cmd/experiments -progress -out results

clean:
	rm -rf results
