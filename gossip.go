// Package gossip is a Go reproduction of "Slow links, fast links, and the
// cost of gossip" (Sourav, Robinson, Gilbert; ICDCS 2018): information
// dissemination in networks whose edges have latencies.
//
// The package is a facade over the internal implementation:
//
//   - Build a latency graph with NewGraph (or the generators in
//     internal/graphgen via the cmd tools).
//   - Analyze computes the weighted-conductance profile: the critical
//     weighted conductance φ* with critical latency ℓ* (Definition 2),
//     the average weighted conductance φavg (Definition 4), and the
//     paper's predicted dissemination bounds.
//   - Disseminate runs a dissemination algorithm: push-pull (Theorem 29),
//     the spanner pipeline (Theorem 25), the deterministic pattern
//     schedule (Lemma 28), or the unified Theorem 31 combination.
//
// Quickstart:
//
//	g := gossip.NewGraph(4)
//	g.MustAddEdge(0, 1, 1)   // fast link
//	g.MustAddEdge(1, 2, 1)
//	g.MustAddEdge(2, 3, 1)
//	g.MustAddEdge(0, 3, 50)  // slow direct link
//	profile, _ := gossip.Analyze(g)
//	out, _ := gossip.Disseminate(g, gossip.Options{Source: 0, Seed: 1})
package gossip

import (
	"gossip/internal/conductance"
	"gossip/internal/core"
	"gossip/internal/graph"
)

// Graph is a connected undirected graph with positive integer edge
// latencies (the paper's network model).
type Graph = graph.Graph

// Edge is an undirected edge with a latency.
type Edge = graph.Edge

// NodeID identifies a node (nodes are numbered 0..N-1).
type NodeID = graph.NodeID

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Profile is the output of Analyze: structure, conductance and bounds.
type Profile = core.Profile

// Bounds collects the paper's round-complexity predictions for a graph.
type Bounds = core.Bounds

// ConductanceResult carries φ*, ℓ*, φavg, the per-latency φℓ map and the
// number of non-empty latency classes L.
type ConductanceResult = conductance.Result

// Analyze profiles a latency graph: exact conductance by cut enumeration
// for small graphs, candidate-cut estimation for large ones, plus the
// paper's predicted bounds.
func Analyze(g *Graph) (*Profile, error) { return core.Analyze(g) }

// Algorithm selects a dissemination strategy.
type Algorithm = core.Algorithm

// Dissemination strategies.
const (
	// Auto runs push-pull and the spanner pipeline side by side and
	// reports the faster arm (Theorem 31).
	Auto = core.Auto
	// PushPull is the classical random phone-call protocol (Theorem 29).
	PushPull = core.PushPull
	// Spanner is ℓ-DTG discovery + directed Baswana-Sen spanner + RR
	// broadcast (Theorem 25), with guess-and-double when D is unknown.
	Spanner = core.Spanner
	// Pattern is the deterministic T(k) schedule (Lemma 28).
	Pattern = core.Pattern
	// Flood is the push-only baseline of footnote 3.
	Flood = core.Flood
)

// Options configures Disseminate.
type Options = core.Options

// Outcome reports a dissemination run.
type Outcome = core.Outcome

// Disseminate runs the selected dissemination algorithm on g and reports
// rounds until every node is informed.
func Disseminate(g *Graph, opts Options) (Outcome, error) { return core.Disseminate(g, opts) }
