// Benchmarks: one testing.B target per experiment in DESIGN.md's index
// (E1-E13), each regenerating its paper table at Quick scale, plus
// ablation benches for the design choices DESIGN.md calls out and
// microbenchmarks of the hot substrate paths.
//
// Round counts (the paper's metric) are attached to each benchmark via
// b.ReportMetric as "rounds"; wall-clock ns/op measures the simulator.
package gossip_test

import (
	"context"
	"runtime"
	"strconv"
	"testing"
	"time"

	"gossip/internal/adversity"
	"gossip/internal/conductance"
	"gossip/internal/experiments"
	proto "gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/guessing"
	"gossip/internal/spanner"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, experiments.Config{Quick: true, Trials: 1, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGridWorkers pits the parallel runner against its own
// serial schedule on the E18 ablation grid (the trial-heaviest ablation):
// the workers=N variant should approach N× on idle multicore hardware,
// with byte-identical results (see experiments.TestWorkerCountDeterminism).
func BenchmarkAblationGridWorkers(b *testing.B) {
	e, err := experiments.Get("E18")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.Config{Quick: true, Trials: 2, Seed: 1, Workers: workers}
				if _, err := e.Run(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1Theorem5(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2GuessSingleton(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3GuessRandom(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4DeltaLower(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5ConductanceLower(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Tradeoff(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7PushPullUpper(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8Spanner(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9Pattern(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Unified(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11DTG(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12RR(b *testing.B)              { benchExperiment(b, "E12") }
func BenchmarkE13NoPull(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14Robustness(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15Messages(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16BoundedIn(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17LocalBroadcast(b *testing.B)  { benchExperiment(b, "E17") }
func BenchmarkE18Blocking(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19Curves(b *testing.B)          { benchExperiment(b, "E19") }
func BenchmarkE20Bandwidth(b *testing.B)       { benchExperiment(b, "E20") }
func BenchmarkE21Jitter(b *testing.B)          { benchExperiment(b, "E21") }
func BenchmarkE22FaultTolerant(b *testing.B)   { benchExperiment(b, "E22") }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationSpannerK varies the clustering depth k: small k keeps
// more edges (small stretch, large out-degree), large k sparsifies harder.
func BenchmarkAblationSpannerK(b *testing.B) {
	g := graphgen.Clique(128, 1)
	for _, k := range []int{2, 4, 7, 14} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var edges, outdeg int
			for i := 0; i < b.N; i++ {
				sp, err := spanner.Build(g, spanner.Options{K: k, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				edges, outdeg = sp.NumEdges(), sp.MaxOutDegree()
			}
			b.ReportMetric(float64(edges), "edges")
			b.ReportMetric(float64(outdeg), "outdeg")
		})
	}
}

// BenchmarkAblationRRFilter compares RR Broadcast with and without the
// latency-<=k edge filter on a dumbbell whose bridge is slow: filtering
// avoids burning rounds on the slow edge when k excludes it.
func BenchmarkAblationRRFilter(b *testing.B) {
	g := graphgen.Dumbbell(12, 40)
	sp, err := spanner.Build(g, spanner.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{10, 200} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := proto.RunRR(g, proto.RROptions{
					Spanner: sp, K: k, Seed: uint64(i + 1), MaxRounds: 1 << 19,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationGuessStrategy quantifies the Lemma 8 log m gap between
// the adaptive fresh strategy and the push-pull-like random strategy.
func BenchmarkAblationGuessStrategy(b *testing.B) {
	const m = 96
	p := 6.0 / m
	strategies := map[string]func(i int) guessing.Strategy{
		"fresh": func(i int) guessing.Strategy {
			return guessing.NewFreshStrategy(m, graphgen.NewRand(uint64(i+1)))
		},
		"random": func(i int) guessing.Strategy {
			return guessing.NewRandomStrategy(m, graphgen.NewRand(uint64(i+1)))
		},
	}
	for name, mk := range strategies {
		b.Run(name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				rng := graphgen.NewRand(uint64(i + 77))
				game, err := guessing.NewGame(m, guessing.RandomTarget(m, p, rng))
				if err != nil {
					b.Fatal(err)
				}
				rounds, _, err := guessing.Play(game, mk(i), 1000*m)
				if err != nil {
					b.Fatal(err)
				}
				total += rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

// BenchmarkAblationPushPullVsUnified measures the Theorem 31 combination
// overhead versus bare push-pull on a topology where push-pull wins.
func BenchmarkAblationPushPullVsUnified(b *testing.B) {
	g := graphgen.Clique(64, 1)
	b.Run("push-pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proto.RunPushPull(g, 0, uint64(i+1), 1<<18); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proto.Unified(g, proto.UnifiedOptions{
				Source: 0, KnownLatencies: true, Seed: uint64(i + 1), MaxRounds: 1 << 18,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate microbenchmarks -------------------------------------------

func BenchmarkSimPushPullRound(b *testing.B) {
	g := graphgen.Clique(256, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proto.RunPushPull(g, 0, uint64(i+1), 1<<16); err != nil {
			b.Fatal(err)
		}
	}
}

// slowBridgeDumbbell builds a sparse dumbbell: two (n/2)-node unit-latency
// cycles joined by one bridge edge of the given latency. Unlike
// graphgen.Dumbbell (clique sides, O(n²) edges) it stays O(n) edges, the
// regime the event engine targets.
func slowBridgeDumbbell(n, bridgeLatency int) *graph.Graph {
	half := n / 2
	g := graph.New(n)
	for side := 0; side < 2; side++ {
		base := side * half
		for i := 0; i < half; i++ {
			g.MustAddEdge(base+i, base+(i+1)%half, 1)
		}
	}
	g.MustAddEdge(0, half, bridgeLatency)
	return g
}

// BenchmarkSimLargeScale exercises the event engine at n=10⁴ — scales the
// old per-round-scan engine could not touch in a bench-smoke job:
//
//   - slow-bridge-dtg: DTG on a sparse dumbbell whose bridge has latency
//     10⁴. The run spans ~10⁵ simulated rounds, nearly all idle while the
//     bridge exchanges crawl; the activation calendar makes it O(events)
//     where the old engine would burn ~10⁹ no-op Activate scans.
//   - sparse-random-push-pull: push-pull on a random 4-regular graph; the
//     journal/delta transport replaces ~10⁶ full 10⁴-bit snapshot clones.
func BenchmarkSimLargeScale(b *testing.B) {
	const n = 10_000
	b.Run("slow-bridge-dtg", func(b *testing.B) {
		g := slowBridgeDumbbell(n, 10_000)
		b.ReportAllocs()
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := proto.RunDTG(g, proto.DTGOptions{Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("dtg incomplete: %+v", res)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("sparse-random-push-pull", func(b *testing.B) {
		rng := graphgen.NewRand(7)
		g, err := graphgen.RandomRegular(n, 4, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := proto.RunPushPull(g, 0, uint64(i+1), 1<<18)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("push-pull incomplete: %+v", res)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkSimMillionNode is the substrate's n=10⁶ gate — infeasible on
// the pre-CSR engine (per-node dense rumor bitsets alone were n²/8 =
// 125 GB; the adjacency-map graph and pointer-heavy state added more):
//
//   - sparse-push-pull: push-pull to full dissemination on a streamed
//     ring+matching expander (degree <= 3, diameter O(log n)). Exercises
//     the CSR adjacency slices, the hybrid sparse rumor sets and the
//     O(1) bucket calendar at ~10⁶ exchanges per round.
//   - slow-bridge-dtg: DTG local broadcast on two 5·10⁵-node rings
//     joined by a latency-250k bridge. The run spans ~10⁶ simulated
//     rounds, nearly all idle while the bridge exchanges crawl; the
//     activation calendar plus sparse heard sets make it O(events).
//
// Worker count: GOMAXPROCS shards (1 on a single-core CI runner — the
// determinism contract makes the results identical either way).
func BenchmarkSimMillionNode(b *testing.B) {
	const n = 1 << 20
	workers := runtime.GOMAXPROCS(0)
	b.Run("sparse-push-pull", func(b *testing.B) {
		csr, err := graphgen.RingMatchingExpanderCSR(n, 1, graphgen.NewRand(7))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := proto.Dispatch("push-pull", nil, proto.DriverOptions{
				Source: 0, Seed: uint64(i + 1), MaxRounds: 1 << 12,
				ExecOptions: proto.ExecOptions{CSR: csr, Workers: workers},
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("push-pull incomplete: %+v", res)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("slow-bridge-dtg", func(b *testing.B) {
		csr, err := graphgen.SlowBridgeRingCSR(n, 250_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := proto.Dispatch("dtg", nil, proto.DriverOptions{
				Seed:        uint64(i + 1),
				ExecOptions: proto.ExecOptions{CSR: csr, Workers: workers},
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("dtg incomplete: %+v", res)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

func BenchmarkE23Scaling(b *testing.B)   { benchExperiment(b, "E23") }
func BenchmarkE24LossSweep(b *testing.B) { benchExperiment(b, "E24") }
func BenchmarkE25Churn(b *testing.B)     { benchExperiment(b, "E25") }

// BenchmarkSimLossyPushPull is the adversity substrate gate: push-pull
// one-to-all at n=10⁴ with 10% per-exchange loss. Versus the benign
// BenchmarkSimLargeScale/sparse-random-push-pull it pays the loss draws
// (one per initiation from the per-node adversity streams) and the
// extra rounds lossy spread needs; the delta-window transport stays on
// because drop fates are fixed at initiation.
func BenchmarkSimLossyPushPull(b *testing.B) {
	const n = 10_000
	rng := graphgen.NewRand(7)
	g, err := graphgen.RandomRegular(n, 4, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	spec := &adversity.Spec{Loss: 0.1}
	b.ReportAllocs()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := proto.Dispatch("push-pull", g, proto.DriverOptions{
			Source: 0, Seed: uint64(i + 1), MaxRounds: 1 << 18,
			ExecOptions: proto.ExecOptions{Adversity: spec},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatalf("lossy push-pull incomplete: %+v", res)
		}
		if res.Dropped == 0 {
			b.Fatal("no losses recorded at 10% loss")
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkConductanceExact(b *testing.B) {
	rng := graphgen.NewRand(1)
	g, err := graphgen.ErdosRenyi(16, 0.4, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 16, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conductance.Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConductanceEstimate(b *testing.B) {
	rng := graphgen.NewRand(2)
	g, err := graphgen.ErdosRenyi(200, 0.05, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 32, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conductance.Estimate(g, conductance.EstimateOptions{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpannerBuild(b *testing.B) {
	g := graphgen.Clique(256, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spanner.Build(g, spanner.Options{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWarmStart is the warm-start payoff gate: a 16-variant
// sweep sharing one prefix forked near the end of the base run, timed
// against the cold baseline that replays the prefix for every variant
// (exactly what POST /v1/sweeps avoids). The benchmark enforces its own
// floor — warm must be at least 5x faster than cold — because the
// bench-compare gate only diffs same-name benchmarks across artifacts
// and cannot relate two different ones. Correctness is asserted outside
// the timer: the control variant must equal the cold run bit-for-bit.
func BenchmarkSweepWarmStart(b *testing.B) {
	const variants = 16
	g := graphgen.Grid(32, 32, 2)
	base := proto.DriverOptions{Source: 0, Seed: 11, MaxRounds: 1 << 14}
	cold, err := proto.Dispatch("push-pull", g, base)
	if err != nil {
		b.Fatal(err)
	}
	forkAt := cold.Rounds - 2 // long shared prefix, short divergent tails
	opts := make([]proto.DriverOptions, variants)
	for i := range opts {
		opts[i] = base
		if i > 0 {
			opts[i].Adversity = adversity.MustParseSpec(
				"loss=0." + strconv.Itoa(10+i))
		}
	}

	// Untimed: determinism contract behind the speedup claim.
	prefix, err := proto.Fork("push-pull", g, base, forkAt)
	if err != nil {
		b.Fatal(err)
	}
	warmCtl, err := prefix.Resume(base)
	if err != nil {
		b.Fatal(err)
	}
	if warmCtl.Rounds != cold.Rounds || warmCtl.Exchanges != cold.Exchanges {
		b.Fatalf("warm control diverged: %d/%d rounds, %d/%d exchanges",
			warmCtl.Rounds, cold.Rounds, warmCtl.Exchanges, cold.Exchanges)
	}

	// Cold baseline: every variant re-runs the prefix before diverging.
	coldStart := time.Now()
	for _, o := range opts {
		w, err := proto.Fork("push-pull", g, base, forkAt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Resume(o); err != nil {
			b.Fatal(err)
		}
	}
	coldNs := float64(time.Since(coldStart))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := proto.Fork("push-pull", g, base, forkAt)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range opts {
			if _, err := w.Resume(o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	warmNs := float64(b.Elapsed()) / float64(b.N)
	speedup := coldNs / warmNs
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(forkAt), "fork_round")
	if speedup < 5 {
		b.Fatalf("warm sweep only %.2fx faster than cold replay (floor 5x): warm %.0fns cold %.0fns",
			speedup, warmNs, coldNs)
	}
}

func benchName(key string, v int) string {
	return key + "=" + strconv.Itoa(v)
}
