// Server benchmarks: end-to-end gossipd throughput over loopback HTTP,
// cold (every job a distinct seed — validate, build graph, simulate,
// stream) and hot (pure cache replay). Both are in the bench-json
// artifact and the CI bench-regression gate; each iteration runs a
// fixed batch of requests so the gate's single-iteration runs measure
// tens of milliseconds, not one noisy sub-millisecond round trip.
package gossip_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"

	"gossip/internal/loadgen"
	"gossip/internal/server"
)

// BenchmarkServerThroughput drives the load generator's fixed mix (9
// jobs across 6 drivers, adversity jobs included) through a fresh seed
// every iteration: no cross-iteration cache reuse, so ns/op tracks the
// full serve path under 4-way client concurrency.
func BenchmarkServerThroughput(b *testing.B) {
	l, err := loadgen.StartLocal(server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	var requests, rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := loadgen.Run(ctx, loadgen.Options{
			BaseURL:  l.URL,
			Clients:  4,
			Requests: 3,
			BaseSeed: uint64(i)*1_000_003 + 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		requests += int64(rep.Requests)
		rounds += rep.RoundsSimulated
	}
	b.StopTimer()
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
}

// BenchmarkServerCachedHit measures the memoized path: one priming
// execution, then batches of identical requests that must all replay
// from cache byte-identically.
func BenchmarkServerCachedHit(b *testing.B) {
	const batch = 64
	l, err := loadgen.StartLocal(server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"driver":"push-pull","graph":{"family":"dumbbell","n":8,"latency":12},"seed":3}`)
	client := &http.Client{}
	post := func() (string, int) {
		resp, err := client.Post(l.URL+"/v1/simulations", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d err %v", resp.StatusCode, err)
		}
		return resp.Header.Get(server.CacheHeader), int(n)
	}
	if status, _ := post(); status != "miss" {
		b.Fatalf("priming request served %q, want miss", status)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			if status, n := post(); status != "hit" || n == 0 {
				b.Fatalf("request %d/%d: cache %q, %d bytes", i, j, status, n)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(batch, "requests/op")
}
