// Sensor network aggregation: ℓ-local broadcast on a radio grid with
// degraded links.
//
// A field of sensors forms a grid; each sensor must exchange readings
// with its radio neighbors (the paper's local broadcast primitive) before
// an aggregate can be escalated. Some links are degraded — rain fade,
// interference — and have much higher latency. The example runs the
// ℓ-DTG deterministic local broadcast at several latency thresholds ℓ,
// showing the paper's trade-off: a small ℓ finishes fast but skips
// degraded neighbors, a large ℓ covers everyone but pays the slow links.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gossip/internal/gossip"
	"gossip/internal/graphgen"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const rows, cols = 6, 6
	const degradedLatency = 12

	// Build the radio grid and degrade every fifth link.
	g := graphgen.Grid(rows, cols, 1)
	degraded := 0
	for i, e := range g.Edges() {
		if i%5 == 0 {
			if err := g.SetLatency(e.U, e.V, degradedLatency); err != nil {
				return err
			}
			degraded++
		}
	}
	fmt.Fprintf(w, "sensor grid %dx%d: %d links, %d degraded (latency %d), rest latency 1\n",
		rows, cols, g.M(), degraded, degradedLatency)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-4s %-18s %-10s %-22s\n", "ℓ", "rounds (ℓ-DTG)", "complete", "neighbors covered")

	for _, ell := range []int{1, 4, degradedLatency} {
		res, err := gossip.RunDTG(g, gossip.DTGOptions{Ell: ell, Seed: 3, MaxRounds: 1 << 20})
		if err != nil {
			return err
		}
		// Count how many (node, neighbor) obligations the threshold
		// covers and how many were met.
		covered, met := 0, 0
		rumors := res.FinalRumors()
		for u := 0; u < g.N(); u++ {
			for _, nb := range g.Neighbors(u) {
				if nb.Latency <= ell {
					covered++
					if rumors[u].Contains(nb.ID) {
						met++
					}
				}
			}
		}
		fmt.Fprintf(w, "%-4d %-18d %-10v %d/%d within ℓ (of %d total)\n",
			ell, res.Rounds, res.Completed, met, covered, 2*g.M())
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "escalating: full dissemination of all readings to every sensor")
	res, err := gossip.PatternBroadcast(g, gossip.PatternOptions{Seed: 3})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pattern broadcast (no global knowledge needed): %d rounds, complete=%v, final k=%d\n",
		res.Rounds, res.Completed, res.FinalGuess)
	fmt.Fprintln(w, "the T(k) schedule hugs fast links and touches degraded links as rarely as possible")
	return nil
}
