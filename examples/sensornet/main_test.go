package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: three threshold rows, a
// completing pattern broadcast, no errors.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sensor grid 6x6", "within ℓ", "pattern broadcast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "complete=true") {
		t.Fatalf("pattern broadcast did not complete:\n%s", out)
	}
}
