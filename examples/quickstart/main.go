// Quickstart: build a small latency graph where the direct link between
// two nodes is slow, analyze its weighted conductance, and disseminate a
// rumor with the unified algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gossip"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A 6-node network: a fast 5-hop ring plus one very slow chord.
	// The paper's motivating observation: the multi-hop fast path beats
	// the direct slow edge, and classical conductance cannot see that.
	g := gossip.NewGraph(6)
	for v := 0; v < 6; v++ {
		g.MustAddEdge(v, (v+1)%6, 1)
	}
	g.MustAddEdge(0, 3, 100) // direct but slow

	profile, err := gossip.Analyze(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "n=%d m=%d Δ=%d weighted diameter D=%d\n",
		profile.N, profile.M, profile.MaxDegree, profile.Diameter)
	fmt.Fprintf(w, "critical weighted conductance φ* = %.4f at critical latency ℓ* = %d\n",
		profile.Conductance.PhiStar, profile.Conductance.EllStar)
	fmt.Fprintf(w, "average weighted conductance φavg = %.4f (L = %d latency classes)\n",
		profile.Conductance.PhiAvg, profile.Conductance.NonEmptyClasses)
	fmt.Fprintf(w, "predicted: push-pull ≤ ~%.0f rounds, unified ≤ ~%.0f rounds\n",
		profile.Bounds.PushPull, profile.Bounds.Unified)

	for _, algo := range []gossip.Algorithm{gossip.PushPull, gossip.Spanner, gossip.Auto} {
		out, err := gossip.Disseminate(g, gossip.Options{
			Algorithm:      algo,
			Source:         0,
			KnownLatencies: true,
			Seed:           42,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10v rounds=%-5d exchanges=%-5d completed=%v\n",
			algo, out.Rounds, out.Exchanges, out.Completed)
	}
	return nil
}
