package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: it must finish without
// error and report every algorithm completing.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "critical weighted conductance") {
		t.Fatalf("no conductance line in output:\n%s", out)
	}
	if strings.Contains(out, "completed=false") || strings.Count(out, "completed=true") != 3 {
		t.Fatalf("not every algorithm completed:\n%s", out)
	}
}
