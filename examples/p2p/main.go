// P2P publish-subscribe: rumor spreading on an overlay with a tail of
// slow peers.
//
// A peer-to-peer overlay is a random regular graph (an expander — great
// classical conductance). A fraction of links cross slow residential
// connections. The example publishes from one peer and compares
// strategies, then shows the Theorem 29 prediction: push-pull's time
// tracks (ℓ*/φ*)·ln n, not the classical 1/φ·ln n, as the slow fraction
// grows.
//
// Run with:
//
//	go run ./examples/p2p
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gossip"
	"gossip/internal/conductance"
	proto "gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/stats"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const n = 64
	const degree = 6
	const slowLatency = 24

	fmt.Fprintf(w, "p2p overlay: %d peers, %d-regular expander, slow links have latency %d\n",
		n, degree, slowLatency)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-14s %-14s %-12s %-12s\n",
		"slow frac", "push-pull", "(ℓ*/φ*)ln n", "ratio", "unified")

	for _, slowPct := range []int{0, 10, 30, 60} {
		rng := graphgen.NewRand(uint64(100 + slowPct))
		g, err := graphgen.RandomRegular(n, degree, 1, rng)
		if err != nil {
			return err
		}
		for _, e := range g.Edges() {
			if rng.IntN(100) < slowPct {
				if err := g.SetLatency(e.U, e.V, slowLatency); err != nil {
					return err
				}
			}
		}
		cond, err := conductance.Estimate(g, conductance.EstimateOptions{Seed: 5})
		if err != nil {
			return err
		}
		bound, err := proto.PushPullBound(cond.PhiStar, cond.EllStar, n)
		if err != nil {
			return err
		}
		var rounds []float64
		for seed := uint64(0); seed < 5; seed++ {
			out, err := gossip.Disseminate(g, gossip.Options{
				Algorithm: gossip.PushPull, Source: 0, Seed: seed,
			})
			if err != nil {
				return err
			}
			rounds = append(rounds, float64(out.Rounds))
		}
		uni, err := gossip.Disseminate(g, gossip.Options{
			Algorithm: gossip.Auto, Source: 0, KnownLatencies: true, Seed: 9,
		})
		if err != nil {
			return err
		}
		mean := stats.Mean(rounds)
		fmt.Fprintf(w, "%-12d %-14.1f %-14.1f %-12.3f %-12d\n",
			slowPct, mean, bound, mean/bound, uni.Rounds)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "classical conductance barely changes with the slow fraction (same topology),")
	fmt.Fprintln(w, "but ℓ* grows — exactly the effect the critical weighted conductance captures")
	return nil
}
