package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: four slow-fraction rows
// plus the closing observation, no errors.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"p2p overlay", "slow frac", "critical weighted conductance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// One row per slow fraction after the header.
	for _, pct := range []string{"0", "10", "30", "60"} {
		if !strings.Contains(out, "\n"+pct+" ") {
			t.Fatalf("missing the %s%% slow-fraction row:\n%s", pct, out)
		}
	}
}
