package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: four WAN-latency rows and
// the conductance profile, no errors.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"anti-entropy replication", "WAN latency", "profile at WAN=32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBuildDeployment pins the deployment topology: 3 cliques of 8 plus
// two WAN links per DC pair.
func TestBuildDeployment(t *testing.T) {
	g := buildDeployment(32)
	if g.N() != replicasPerDC*numDCs {
		t.Fatalf("n = %d, want %d", g.N(), replicasPerDC*numDCs)
	}
	wantM := numDCs*replicasPerDC*(replicasPerDC-1)/2 + numDCs*(numDCs-1)
	if g.M() != wantM {
		t.Fatalf("m = %d, want %d", g.M(), wantM)
	}
}
