// Database replication: anti-entropy gossip across three datacenters.
//
// Each datacenter is a clique of replicas with fast (latency-1) LAN
// links; datacenters are joined by slow WAN links with heterogeneous
// latencies (the classic epidemic-replication deployment of Demers et
// al., the paper's motivating application).
//
// The example shows why latency-aware analysis matters: classical
// conductance treats WAN and LAN edges alike, while ℓ* tracks the WAN
// latency — the actual bottleneck. At this deployment's scale push-pull
// wins (its (ℓ*/φ*)·log n bound is small because gateways find the WAN
// links quickly); the spanner pipeline pays its polylog-factor setup
// cost. The unified Theorem 31 algorithm always tracks the faster arm.
//
// Run with:
//
//	go run ./examples/dbreplication
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gossip"
)

const (
	replicasPerDC = 8
	numDCs        = 3
)

// buildDeployment wires three DC cliques with WAN links of the given
// latency between a few gateway replicas per DC pair.
func buildDeployment(wanLatency int) *gossip.Graph {
	g := gossip.NewGraph(replicasPerDC * numDCs)
	id := func(dc, r int) int { return dc*replicasPerDC + r }
	for dc := 0; dc < numDCs; dc++ {
		for a := 0; a < replicasPerDC; a++ {
			for b := a + 1; b < replicasPerDC; b++ {
				g.MustAddEdge(id(dc, a), id(dc, b), 1)
			}
		}
	}
	// Two redundant WAN links per DC pair, terminating at gateways 0,1.
	for dcA := 0; dcA < numDCs; dcA++ {
		for dcB := dcA + 1; dcB < numDCs; dcB++ {
			g.MustAddEdge(id(dcA, 0), id(dcB, 0), wanLatency)
			g.MustAddEdge(id(dcA, 1), id(dcB, 1), wanLatency)
		}
	}
	return g
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "anti-entropy replication across 3 datacenters, 8 replicas each")
	fmt.Fprintln(w, "a write lands on replica 0 of DC0 and must reach every replica")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-10s\n", "WAN latency", "push-pull", "spanner", "unified", "winner")
	for _, wan := range []int{2, 8, 32, 128} {
		g := buildDeployment(wan)
		pp, err := gossip.Disseminate(g, gossip.Options{
			Algorithm: gossip.PushPull, Source: 0, Seed: 7,
		})
		if err != nil {
			return err
		}
		sp, err := gossip.Disseminate(g, gossip.Options{
			Algorithm: gossip.Spanner, Source: 0, KnownLatencies: true, Seed: 7,
		})
		if err != nil {
			return err
		}
		uni, err := gossip.Disseminate(g, gossip.Options{
			Algorithm: gossip.Auto, Source: 0, KnownLatencies: true, Seed: 7,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12d %-12d %-12d %-12d %-10v\n",
			wan, pp.Rounds, sp.Rounds, uni.Rounds, uni.Algorithm)
	}
	fmt.Fprintln(w)
	g := buildDeployment(32)
	profile, err := gossip.Analyze(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "profile at WAN=32: D=%d Δ=%d φ*=%.4f ℓ*=%d φavg=%.5f\n",
		profile.Diameter, profile.MaxDegree,
		profile.Conductance.PhiStar, profile.Conductance.EllStar, profile.Conductance.PhiAvg)
	fmt.Fprintln(w, "note how ℓ* tracks the WAN latency: the WAN cut is the gossip bottleneck")
	return nil
}
