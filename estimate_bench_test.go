// Estimate benchmark: one full coarse-to-fine inverse fit (the
// machinery behind POST /v1/estimates) per iteration — cold grid pass,
// one warm-start refinement pass over a forked prefix, cold
// verification of the incumbent. In the bench-json artifact and the CI
// bench-regression gate; correctness (exact recovery of the planted
// truth) is asserted inside the loop so a regression can never hide
// behind a faster wrong answer.
package gossip_test

import (
	"testing"

	"gossip/internal/curve"
	"gossip/internal/estimate"
	proto "gossip/internal/gossip"
	"gossip/internal/graphgen"
)

// BenchmarkEstimateFit plants loss=0.3 on the E29 grid family and times
// the full fit. The evals metric is the number of candidate simulations
// per fit (grid + refinement + verify) — the quantity the warm-start
// refinement keeps cheap.
func BenchmarkEstimateFit(b *testing.B) {
	g, err := graphgen.Build(graphgen.Spec{Family: "grid", N: 25, Latency: 1, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	base := proto.DriverOptions{Source: 0, Seed: 7, MaxRounds: 1 << 14}
	truth := estimate.Candidate{Loss: 0.3, Scale: 1}
	grid := estimate.Grid{LossMax: 0.3, LossSteps: 3, ChurnMax: 4, ChurnSteps: 2, Scales: []int{1}}

	evalCold := func(cand estimate.Candidate) (curve.Curve, error) {
		opts := base
		opts.Adversity = cand.Spec(n, base.Source)
		res, err := proto.Dispatch("push-pull", g, opts)
		if err != nil {
			return nil, err
		}
		return curve.FromInformedAt(res.InformedAt), nil
	}
	observed, err := evalCold(truth)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	var evals int
	for i := 0; i < b.N; i++ {
		w, err := proto.Fork("push-pull", g, base, estimate.ChurnLeave)
		if err != nil {
			b.Fatal(err)
		}
		res, err := estimate.Fit(estimate.Config{
			Observed: observed,
			Grid:     grid,
			Refine:   1,
			EvalCold: evalCold,
			EvalWarm: func(cand estimate.Candidate) (curve.Curve, error) {
				opts := base
				opts.Adversity = cand.Spec(n, base.Source)
				r, err := w.Resume(opts)
				if err != nil {
					return nil, err
				}
				return curve.FromInformedAt(r.InformedAt), nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Best != truth || res.Score != 0 {
			b.Fatalf("fit missed planted truth: best %+v score %g", res.Best, res.Score)
		}
		evals = res.Evaluated
	}
	b.ReportMetric(float64(evals), "evals")
}
