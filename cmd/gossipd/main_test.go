package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gossip/internal/loadgen"
	"gossip/internal/server"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8080" || o.pool != 0 || o.cacheSize != 1024 ||
		o.drainTimeout != 30*time.Second || o.selfcheck ||
		o.clients != 16 || o.requests != 4 || o.surgeN != 2048 || o.seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	o, err := parseArgs([]string{
		"-addr", ":9999", "-pool", "3", "-cache", "10", "-max-n", "4096",
		"-timeout", "2s", "-max-timeout", "10s", "-drain-timeout", "5s",
		"-selfcheck", "-clients", "200", "-requests", "6", "-min-peak", "180",
		"-surge-n", "512", "-seed", "42",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9999" || o.pool != 3 || o.cacheSize != 10 || o.maxN != 4096 ||
		o.defaultTimeout != 2*time.Second || o.maxTimeout != 10*time.Second ||
		o.drainTimeout != 5*time.Second || !o.selfcheck || o.clients != 200 ||
		o.requests != 6 || o.minPeak != 180 || o.surgeN != 512 || o.seed != 42 {
		t.Fatalf("overrides: %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"-pool", "x"},
		{"-timeout", "fast"},
		{"stray"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}

// TestRunSelfCheck drives the whole selfcheck path through run() at unit
// scale: the binary's CI load-smoke behavior, minus the process spawn.
func TestRunSelfCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-selfcheck", "-clients", "5", "-requests", "2", "-surge-n", "96", "-seed", "11"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "selfcheck: OK") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestServeAndDrain boots the real server on an ephemeral port, submits
// a job over HTTP, then stops it via the signal-equivalent seam and
// requires a clean drain.
func TestServeAndDrain(t *testing.T) {
	o, err := parseArgs([]string{"-addr", "127.0.0.1:0", "-pool", "2"})
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	o.ready = func(addr string) { ready <- addr }
	o.stop = stop

	var stdout bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- serve(o, &stdout) }()
	addr := <-ready

	resp, err := http.Post("http://"+addr+"/v1/simulations", "application/json",
		strings.NewReader(`{"driver":"push-pull","graph":{"family":"dumbbell","n":8,"latency":12},"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"event":"result"`) {
		t.Fatalf("job: %d %s", resp.StatusCode, body)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("serve: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "listening on") || !strings.Contains(out, "drained (1 completed") {
		t.Fatalf("serve output: %s", out)
	}
}

func TestServeBadAddr(t *testing.T) {
	o, err := parseArgs([]string{"-addr", "256.256.256.256:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := serve(o, io.Discard); err == nil {
		t.Fatal("serve bound an impossible address")
	}
}

func TestParseArgsFleet(t *testing.T) {
	o, err := parseArgs([]string{"-peers", "a:1, b:2,c:3", "-advertise", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	peers, err := o.fleet()
	if err != nil || len(peers) != 3 || peers[1] != "b:2" {
		t.Fatalf("fleet: %v %v", peers, err)
	}
	for _, args := range [][]string{
		{"-peers", "a:1,b:2"},                      // -advertise missing
		{"-advertise", "a:1"},                      // -peers missing
		{"-peers", "a:1", "-advertise", "a:1"},     // fewer than 2 members
		{"-peers", "a:1,b:2", "-advertise", "c:3"}, // self not in list
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted", args)
		}
	}
}

func TestParseArgsDistCheck(t *testing.T) {
	o, err := parseArgs([]string{"-distcheck", "-fleet", "a:1,b:2,c:3", "-reference", "r:4",
		"-shards", "2", "-shard-n", "1024"})
	if err != nil {
		t.Fatal(err)
	}
	urls := o.fleetList()
	if len(urls) != 3 || urls[0] != "http://a:1" || o.distShards != 2 || o.shardN != 1024 {
		t.Fatalf("distcheck opts: %v %+v", urls, o)
	}
	for _, args := range [][]string{
		{"-distcheck"},                                     // no fleet, no reference
		{"-distcheck", "-fleet", "a:1,b:2"},                // no reference
		{"-distcheck", "-fleet", "a:1", "-reference", "r"}, // one member
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted", args)
		}
	}
}

// TestRunDistCheck drives the -distcheck mode through run() against an
// in-process fleet and reference — the CI distributed-smoke behavior,
// minus the process spawns.
func TestRunDistCheck(t *testing.T) {
	fleet, err := loadgen.StartFleet(3, server.Config{Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ref, err := loadgen.StartLocal(server.Config{Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{"-distcheck",
		"-fleet", strings.Join(fleet.URLs(), ","),
		"-reference", ref.URL,
		"-shards", "2", "-shard-n", "256", "-seed", "13"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "distcheck: OK") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}
