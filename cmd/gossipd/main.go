// Command gossipd serves gossip simulations over HTTP: POST parameterized
// jobs (driver, graph family, fault schedule, seed) to /v1/simulations
// and stream back NDJSON progress + result events. Completed
// deterministic jobs are memoized, identical concurrent requests
// coalesce, and SIGTERM/SIGINT drain gracefully (in-flight jobs finish,
// queued jobs get 503).
//
// Usage:
//
//	gossipd -addr 127.0.0.1:8080 -pool 8 -cache 1024
//	curl -s localhost:8080/v1/simulations -d \
//	  '{"driver":"push-pull","graph":{"family":"dumbbell","n":8,"latency":12},"seed":3}'
//
// The -selfcheck mode boots two in-process servers with different pool
// sizes and runs the internal load generator against them — the CI
// load-smoke entry point.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gossip/internal/loadgen"
	"gossip/internal/server"
	"gossip/internal/server/api"
)

// options holds the parsed command line.
type options struct {
	addr           string
	pool           int
	cacheSize      int
	storeDir       string
	maxN           int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	drainTimeout   time.Duration

	selfcheck bool
	clients   int
	requests  int
	minPeak   int
	surgeN    int
	seed      uint64

	// test seams: ready receives the bound address once listening; a
	// closed stop channel triggers the same graceful drain as SIGTERM.
	ready func(addr string)
	stop  <-chan struct{}
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested (the pattern established for
// gossipsim/experiments/graphinfo/guessgame).
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&o.pool, "pool", 0, "concurrently executing jobs (0 = GOMAXPROCS); further jobs queue")
	fs.IntVar(&o.cacheSize, "cache", 1024, "completed-job LRU cache entries (0 = 1024, negative disables caching)")
	fs.StringVar(&o.storeDir, "store", "", "content-addressed result store directory (empty = in-memory cache only); bodies persist across restarts")
	fs.IntVar(&o.maxN, "max-n", 0, "largest accepted built graph size in nodes (0 = 131072); dumbbell builds 2n, ring layers*n")
	fs.DurationVar(&o.defaultTimeout, "timeout", 0, "default per-job execution timeout (0 = 60s)")
	fs.DurationVar(&o.maxTimeout, "max-timeout", 0, "largest per-job timeout a request may ask for (0 = 5m)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	fs.BoolVar(&o.selfcheck, "selfcheck", false, "boot in-process servers, drive the load generator, exit")
	fs.IntVar(&o.clients, "clients", 16, "selfcheck: concurrent closed-loop clients")
	fs.IntVar(&o.requests, "requests", 4, "selfcheck: mix requests per client")
	fs.IntVar(&o.minPeak, "min-peak", 0, "selfcheck: required peak concurrent in-flight jobs (0 = clients less 10%)")
	fs.IntVar(&o.surgeN, "surge-n", 2048, "selfcheck: surge job graph size")
	fs.Uint64Var(&o.seed, "seed", 1, "selfcheck: base seed")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if opts.selfcheck {
		err := loadgen.SelfCheck(context.Background(), loadgen.SelfCheckOptions{
			Clients:         opts.clients,
			Requests:        opts.requests,
			MinPeakInFlight: opts.minPeak,
			SurgeN:          opts.surgeN,
			Seed:            opts.seed,
			Out:             stdout,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if err := serve(opts, stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// serve runs the service until SIGTERM/SIGINT (or the test stop seam),
// then drains: admission stops, queued jobs get 503, in-flight jobs
// finish within drainTimeout.
func serve(o options, stdout io.Writer) error {
	if o.storeDir != "" {
		if err := os.MkdirAll(o.storeDir, 0o755); err != nil {
			return fmt.Errorf("gossipd: result store: %w", err)
		}
	}
	srv := server.New(server.Config{
		Pool:           o.pool,
		CacheSize:      o.cacheSize,
		StoreDir:       o.storeDir,
		MaxN:           o.maxN,
		DefaultTimeout: o.defaultTimeout,
		MaxTimeout:     o.maxTimeout,
	})
	lis, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "gossipd: listening on %s (pool=%d, cache=%d entries, schema v%d)\n",
		lis.Addr(), srv.Metrics().PoolSize, o.cacheSize, api.SchemaVersion)
	if o.ready != nil {
		o.ready(lis.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "gossipd: %v — draining (in-flight jobs finish, queued jobs get 503)\n", s)
	case <-o.stop:
		fmt.Fprintln(stdout, "gossipd: stop requested — draining")
	}
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("gossipd: drain incomplete after %v: %w", o.drainTimeout, err)
	}
	m := srv.Metrics()
	fmt.Fprintf(stdout, "gossipd: drained (%d completed, %d failed, %d cache hits)\n",
		m.Completed, m.Failed, m.CacheHits)
	return nil
}
