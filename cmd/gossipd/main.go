// Command gossipd serves gossip simulations over HTTP: POST parameterized
// jobs (driver, graph family, fault schedule, seed) to /v1/simulations
// and stream back NDJSON progress + result events. Completed
// deterministic jobs are memoized, identical concurrent requests
// coalesce, and SIGTERM/SIGINT drain gracefully (in-flight jobs finish,
// queued jobs get 503).
//
// Usage:
//
//	gossipd -addr 127.0.0.1:8080 -pool 8 -cache 1024
//	curl -s localhost:8080/v1/simulations -d \
//	  '{"driver":"push-pull","graph":{"family":"dumbbell","n":8,"latency":12},"seed":3}'
//
// The -selfcheck mode boots two in-process servers with different pool
// sizes and runs the internal load generator against them — the CI
// load-smoke entry point.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // routed only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gossip/internal/loadgen"
	"gossip/internal/server"
	"gossip/internal/server/api"
)

// options holds the parsed command line.
type options struct {
	addr           string
	pool           int
	cacheSize      int
	storeDir       string
	maxN           int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	drainTimeout   time.Duration
	peers          string
	advertise      string
	pprof          bool

	selfcheck bool
	clients   int
	requests  int
	minPeak   int
	surgeN    int
	seed      uint64
	maxWall   time.Duration

	distcheck  bool
	fleetURLs  string
	reference  string
	distShards int
	shardN     int

	// test seams: ready receives the bound address once listening; a
	// closed stop channel triggers the same graceful drain as SIGTERM.
	ready func(addr string)
	stop  <-chan struct{}
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested (the pattern established for
// gossipsim/experiments/graphinfo/guessgame).
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&o.pool, "pool", 0, "concurrently executing jobs (0 = GOMAXPROCS); further jobs queue")
	fs.IntVar(&o.cacheSize, "cache", 1024, "completed-job LRU cache entries (0 = 1024, negative disables caching)")
	fs.StringVar(&o.storeDir, "store", "", "content-addressed result store directory (empty = in-memory cache only); bodies persist across restarts")
	fs.IntVar(&o.maxN, "max-n", 0, "largest accepted built graph size in nodes (0 = 131072); dumbbell builds 2n, ring layers*n")
	fs.DurationVar(&o.defaultTimeout, "timeout", 0, "default per-job execution timeout (0 = 60s)")
	fs.DurationVar(&o.maxTimeout, "max-timeout", 0, "largest per-job timeout a request may ask for (0 = 5m)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	fs.StringVar(&o.peers, "peers", "", "comma-separated fleet membership (host:port, this process included); enables the partitioned cache and distributed execution")
	fs.StringVar(&o.advertise, "advertise", "", "this process's own entry in -peers")
	fs.BoolVar(&o.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	fs.BoolVar(&o.selfcheck, "selfcheck", false, "boot in-process servers, drive the load generator, exit")
	fs.IntVar(&o.clients, "clients", 16, "selfcheck: concurrent closed-loop clients")
	fs.IntVar(&o.requests, "requests", 4, "selfcheck: mix requests per client")
	fs.IntVar(&o.minPeak, "min-peak", 0, "selfcheck: required peak concurrent in-flight jobs (0 = clients less 10%)")
	fs.IntVar(&o.surgeN, "surge-n", 2048, "selfcheck: surge job graph size")
	fs.Uint64Var(&o.seed, "seed", 1, "selfcheck: base seed")
	fs.DurationVar(&o.maxWall, "max-wall", 0, "selfcheck: load-phase wall-clock budget (0 = unlimited)")
	fs.BoolVar(&o.distcheck, "distcheck", false, "check a running fleet against a reference server, exit")
	fs.StringVar(&o.fleetURLs, "fleet", "", "distcheck: comma-separated fleet member base URLs")
	fs.StringVar(&o.reference, "reference", "", "distcheck: single-process reference server base URL")
	fs.IntVar(&o.distShards, "shards", 0, "distcheck: sharded-job worker count (0 = 2)")
	fs.IntVar(&o.shardN, "shard-n", 0, "distcheck: sharded-job graph size (0 = 4096)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if _, err := o.fleet(); err != nil {
		return options{}, err
	}
	if o.distcheck {
		if len(o.fleetList()) < 2 || o.reference == "" {
			return options{}, fmt.Errorf("-distcheck needs -fleet with at least 2 URLs and -reference")
		}
	}
	return o, nil
}

// fleetList splits -fleet into base URLs, normalizing bare host:port
// entries to http://.
func (o *options) fleetList() []string {
	var urls []string
	for _, u := range strings.Split(o.fleetURLs, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, u)
	}
	return urls
}

// fleet validates and splits the -peers/-advertise pair. Both empty
// means no fleet; otherwise both are required, the list needs at least
// two members, and -advertise must be one of them.
func (o *options) fleet() ([]string, error) {
	if o.peers == "" && o.advertise == "" {
		return nil, nil
	}
	if o.peers == "" || o.advertise == "" {
		return nil, fmt.Errorf("-peers and -advertise must be set together")
	}
	var peers []string
	self := false
	for _, p := range strings.Split(o.peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		peers = append(peers, p)
		if p == o.advertise {
			self = true
		}
	}
	if len(peers) < 2 {
		return nil, fmt.Errorf("-peers needs at least 2 members, got %d", len(peers))
	}
	if !self {
		return nil, fmt.Errorf("-advertise %q is not in -peers", o.advertise)
	}
	return peers, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if opts.distcheck {
		ref := opts.reference
		if !strings.Contains(ref, "://") {
			ref = "http://" + ref
		}
		err := loadgen.DistCheck(context.Background(), loadgen.DistCheckOptions{
			FleetURLs:    opts.fleetList(),
			ReferenceURL: ref,
			Shards:       opts.distShards,
			ShardN:       opts.shardN,
			Seed:         opts.seed,
			Out:          stdout,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if opts.selfcheck {
		err := loadgen.SelfCheck(context.Background(), loadgen.SelfCheckOptions{
			Clients:         opts.clients,
			Requests:        opts.requests,
			MinPeakInFlight: opts.minPeak,
			SurgeN:          opts.surgeN,
			Seed:            opts.seed,
			MaxWall:         opts.maxWall,
			Out:             stdout,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if err := serve(opts, stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// serve runs the service until SIGTERM/SIGINT (or the test stop seam),
// then drains: admission stops, queued jobs get 503, in-flight jobs
// finish within drainTimeout.
func serve(o options, stdout io.Writer) error {
	if o.storeDir != "" {
		if err := os.MkdirAll(o.storeDir, 0o755); err != nil {
			return fmt.Errorf("gossipd: result store: %w", err)
		}
	}
	peers, err := o.fleet()
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Pool:           o.pool,
		CacheSize:      o.cacheSize,
		StoreDir:       o.storeDir,
		MaxN:           o.maxN,
		DefaultTimeout: o.defaultTimeout,
		MaxTimeout:     o.maxTimeout,
		Peers:          peers,
		Advertise:      o.advertise,
	})
	lis, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if o.pprof {
		// net/http/pprof registers on DefaultServeMux at import; the
		// flag decides whether those routes are reachable.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, "gossipd: listening on %s (pool=%d, cache=%d entries, schema v%d)\n",
		lis.Addr(), srv.Metrics().PoolSize, o.cacheSize, api.SchemaVersion)
	if len(peers) > 0 {
		fmt.Fprintf(stdout, "gossipd: fleet member %s of %d peers\n", o.advertise, len(peers))
	}
	if o.ready != nil {
		o.ready(lis.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "gossipd: %v — draining (in-flight jobs finish, queued jobs get 503)\n", s)
	case <-o.stop:
		fmt.Fprintln(stdout, "gossipd: stop requested — draining")
	}
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("gossipd: drain incomplete after %v: %w", o.drainTimeout, err)
	}
	m := srv.Metrics()
	fmt.Fprintf(stdout, "gossipd: drained (%d completed, %d failed, %d cache hits)\n",
		m.Completed, m.Failed, m.CacheHits)
	return nil
}
