// Command graphinfo prints the weighted-conductance profile of a
// generated topology: D, Δ, φℓ per latency, φ*, ℓ*, φavg, L, and the
// paper's predicted dissemination bounds.
//
// Usage:
//
//	graphinfo -graph dumbbell -n 8 -latency 32
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gossip/internal/core"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// options holds the parsed command line.
type options struct {
	graphName string
	n         int
	latency   int
	p         float64
	seed      uint64
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested (the pattern cmd/gossipsim and
// cmd/experiments established).
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	fs.StringVar(&o.graphName, "graph", "dumbbell", "topology (see gossipsim -help)")
	fs.IntVar(&o.n, "n", 8, "node count parameter")
	fs.IntVar(&o.latency, "latency", 32, "latency parameter")
	fs.Float64Var(&o.p, "p", 0.3, "probability parameter")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	g, err := buildGraph(opts.graphName, opts.n, opts.latency, opts.p, opts.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	prof, err := core.Analyze(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	mode := "estimated (candidate-cut upper bounds)"
	if prof.Conductance.Exact {
		mode = "exact (full cut enumeration)"
	}
	fmt.Printf("graph %s: n=%d m=%d Δ=%d D=%d ℓmax=%d\n",
		opts.graphName, prof.N, prof.M, prof.MaxDegree, prof.Diameter, prof.MaxLatency)
	fmt.Printf("conductance mode: %s\n", mode)
	lats := make([]int, 0, len(prof.Conductance.PhiL))
	for l := range prof.Conductance.PhiL {
		lats = append(lats, l)
	}
	sort.Ints(lats)
	for _, l := range lats {
		marker := ""
		if l == prof.Conductance.EllStar {
			marker = "   <-- critical (ℓ*)"
		}
		fmt.Printf("  φ_%-6d = %.6f   φ_ℓ/ℓ = %.6f%s\n",
			l, prof.Conductance.PhiL[l], prof.Conductance.PhiL[l]/float64(l), marker)
	}
	fmt.Printf("φ* = %.6f  ℓ* = %d  φavg = %.6f  L = %d  (classes ≤ %d)\n",
		prof.Conductance.PhiStar, prof.Conductance.EllStar,
		prof.Conductance.PhiAvg, prof.Conductance.NonEmptyClasses, prof.Conductance.Classes())
	if err := prof.Conductance.CheckTheorem5(); err != nil {
		fmt.Printf("Theorem 5: VIOLATED: %v\n", err)
		return 2
	}
	fmt.Println("Theorem 5: φ*/2ℓ* ≤ φavg ≤ Lφ*/ℓ*  holds")
	if cut := prof.Conductance.CriticalCut; cut != nil {
		side := 0
		for _, in := range cut {
			if in {
				side++
			}
		}
		fmt.Printf("critical cut: %d vs %d nodes (bottleneck at ℓ* = %d)\n",
			side, prof.N-side, prof.Conductance.EllStar)
	}
	fmt.Println("predicted bounds (rounds):")
	fmt.Printf("  lower Ω(min(D+Δ, ℓ*/φ*))      %.0f\n", prof.Bounds.Lower)
	fmt.Printf("  push-pull O((ℓ*/φ*)ln n)      %.0f\n", prof.Bounds.PushPull)
	fmt.Printf("  push-pull O((L/φavg)ln n)     %.0f\n", prof.Bounds.PushPullAvg)
	fmt.Printf("  spanner known-ℓ O(D log³n)    %.0f\n", prof.Bounds.SpannerKnown)
	fmt.Printf("  spanner unknown O((D+Δ)log³n) %.0f\n", prof.Bounds.SpannerUnknown)
	fmt.Printf("  pattern O(D log²n logD)       %.0f\n", prof.Bounds.Pattern)
	fmt.Printf("  unified (Theorem 31)          %.0f\n", prof.Bounds.Unified)
	return 0
}

func buildGraph(name string, n, latency int, p float64, seed uint64) (*graph.Graph, error) {
	rng := graphgen.NewRand(seed)
	switch name {
	case "clique":
		return graphgen.Clique(n, latency), nil
	case "star":
		return graphgen.Star(n, latency), nil
	case "path":
		return graphgen.Path(n, latency), nil
	case "cycle":
		return graphgen.Cycle(n, latency), nil
	case "dumbbell":
		return graphgen.Dumbbell(n, latency), nil
	case "er":
		g, err := graphgen.ErdosRenyi(n, p, 1, rng)
		if err != nil {
			return nil, err
		}
		graphgen.AssignRandomLatencies(g, 1, latency, rng)
		return g, nil
	case "ring":
		ring, err := graphgen.NewRingNetwork(6, n, latency, rng)
		if err != nil {
			return nil, err
		}
		return ring.Graph, nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}
