package main

import "testing"

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{"-graph", "er", "-n", "24", "-latency", "8", "-p", "0.5", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "er" || o.n != 24 || o.latency != 8 || o.p != 0.5 || o.seed != 9 {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "dumbbell" || o.n != 8 || o.latency != 32 || o.p != 0.3 || o.seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"positional"},
		{"-n", "abc"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	for _, name := range []string{"clique", "star", "path", "cycle", "dumbbell", "er", "ring"} {
		g, err := buildGraph(name, 8, 4, 0.5, 1)
		if err != nil {
			t.Fatalf("buildGraph(%q): %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("buildGraph(%q): empty graph", name)
		}
	}
	if _, err := buildGraph("bogus", 8, 4, 0.5, 1); err == nil {
		t.Fatal("bogus graph accepted")
	}
}
