package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gossip
BenchmarkSimPushPullRound-8 	       5	   3517197 ns/op	 4179336 B/op	    3124 allocs/op
BenchmarkSimLargeScale/slow-bridge-dtg         	       1	 498434859 ns/op	     40020 rounds	142161688 B/op	  360397 allocs/op
PASS
ok  	gossip	0.631s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := got["BenchmarkSimPushPullRound"]
	if !ok {
		t.Fatalf("missing push-pull bench (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if pp["iterations"] != 5 || pp["ns/op"] != 3517197 || pp["allocs/op"] != 3124 || pp["B/op"] != 4179336 {
		t.Fatalf("push-pull metrics = %v", pp)
	}
	ls := got["BenchmarkSimLargeScale/slow-bridge-dtg"]
	if ls["rounds"] != 40020 {
		t.Fatalf("rounds metric = %v", ls)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d benchmarks, want 2", len(decoded))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &out); err == nil {
		t.Fatal("expected error for input without benchmark lines")
	}
}

// --- -compare regression gate ------------------------------------------

func metrics(ns, allocs float64) map[string]float64 {
	return map[string]float64{"iterations": 1, "ns/op": ns, "allocs/op": allocs}
}

// TestCompareSyntheticRegression is the acceptance check of the CI gate:
// a synthetic >25% ns/op regression on a matched benchmark must fail.
func TestCompareSyntheticRegression(t *testing.T) {
	baseline := map[string]map[string]float64{
		"BenchmarkA": metrics(1000, 50),
		"BenchmarkB": metrics(2000, 10),
	}
	current := map[string]map[string]float64{
		"BenchmarkA": metrics(1300, 50), // +30% ns/op: beyond the gate
		"BenchmarkB": metrics(2000, 10),
	}
	regs, notes, matched := compare(baseline, current, 0.25)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("regressions = %v, want the BenchmarkA ns/op regression", regs)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes %v", notes)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	baseline := map[string]map[string]float64{"BenchmarkA": metrics(1000, 100)}
	current := map[string]map[string]float64{"BenchmarkA": metrics(1200, 120)} // +20% both
	if regs, _, _ := compare(baseline, current, 0.25); len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", regs)
	}
	// Improvements never fail.
	current = map[string]map[string]float64{"BenchmarkA": metrics(10, 1)}
	if regs, _, _ := compare(baseline, current, 0.25); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	baseline := map[string]map[string]float64{"BenchmarkA": metrics(1000, 100)}
	current := map[string]map[string]float64{"BenchmarkA": metrics(1000, 200)}
	regs, _, _ := compare(baseline, current, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("regressions = %v, want an allocs/op regression", regs)
	}
}

func TestCompareUnmatchedBenchmarksAreNotes(t *testing.T) {
	baseline := map[string]map[string]float64{"BenchmarkGone": metrics(1, 1)}
	current := map[string]map[string]float64{"BenchmarkNew": metrics(1e12, 1e12)}
	regs, notes, matched := compare(baseline, current, 0.25)
	if len(regs) != 0 {
		t.Fatalf("unmatched benchmarks must not fail the gate: %v", regs)
	}
	if matched != 0 {
		t.Fatalf("matched = %d, want 0", matched)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want both unmatched directions reported", notes)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, art map[string]map[string]float64) string {
		blob, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", map[string]map[string]float64{"BenchmarkA": metrics(1000, 10)})
	bad := write("bad.json", map[string]map[string]float64{"BenchmarkA": metrics(1500, 10)})
	good := write("good.json", map[string]map[string]float64{"BenchmarkA": metrics(1100, 10)})

	var out strings.Builder
	if err := runCompare(base, bad, 0.25, &out); err == nil {
		t.Fatalf("gate passed a +50%% regression; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
	out.Reset()
	if err := runCompare(base, good, 0.25, &out); err != nil {
		t.Fatalf("gate failed a +10%% drift: %v\n%s", err, out.String())
	}
	// A raised threshold lets the bad run through.
	out.Reset()
	if err := runCompare(base, bad, 0.60, &out); err != nil {
		t.Fatalf("threshold 0.60 still failed +50%%: %v", err)
	}
	if err := runCompare(dir+"/missing.json", good, 0.25, &out); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}
