package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gossip
BenchmarkSimPushPullRound-8 	       5	   3517197 ns/op	 4179336 B/op	    3124 allocs/op
BenchmarkSimLargeScale/slow-bridge-dtg         	       1	 498434859 ns/op	     40020 rounds	142161688 B/op	  360397 allocs/op
PASS
ok  	gossip	0.631s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := got["BenchmarkSimPushPullRound"]
	if !ok {
		t.Fatalf("missing push-pull bench (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if pp["iterations"] != 5 || pp["ns/op"] != 3517197 || pp["allocs/op"] != 3124 || pp["B/op"] != 4179336 {
		t.Fatalf("push-pull metrics = %v", pp)
	}
	ls := got["BenchmarkSimLargeScale/slow-bridge-dtg"]
	if ls["rounds"] != 40020 {
		t.Fatalf("rounds metric = %v", ls)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d benchmarks, want 2", len(decoded))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &out); err == nil {
		t.Fatal("expected error for input without benchmark lines")
	}
}
