// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON artifact on stdout, so CI can track the substrate perf
// trajectory (ns/op, allocs/op, the rounds metric, ...) across PRs.
//
// Usage:
//
//	go test -bench=BenchmarkSim -benchtime=1x -benchmem -run='^$' . | benchjson > BENCH_sim.json
//
// The artifact is an object keyed by benchmark name (GOMAXPROCS suffix
// stripped) whose values map metric units to numbers, e.g.
//
//	{"BenchmarkSimPushPullRound": {"iterations": 5, "ns/op": 3517197, "allocs/op": 3124}}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then whitespace-separated "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parseBench extracts {name: {unit: value}} from go-test bench output.
// Non-benchmark lines (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations of %s: %w", m[1], err)
		}
		metrics := map[string]float64{"iterations": iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: metric %q of %s: %w", fields[i+1], m[1], err)
			}
			metrics[fields[i+1]] = v
		}
		out[m[1]] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func run(in io.Reader, out io.Writer) error {
	parsed, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	// Deterministic key order so artifacts diff cleanly across runs.
	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		blob, err := json.Marshal(parsed[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, blob)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err = io.WriteString(out, b.String())
	return err
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
