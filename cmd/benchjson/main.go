// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON artifact on stdout, so CI can track the substrate perf
// trajectory (ns/op, allocs/op, the rounds metric, ...) across PRs.
//
// Usage:
//
//	go test -bench=BenchmarkSim -benchtime=1x -benchmem -run='^$' . | benchjson > BENCH_sim.json
//	benchjson -compare BENCH_baseline.json BENCH_sim.json
//
// The artifact is an object keyed by benchmark name (GOMAXPROCS suffix
// stripped) whose values map metric units to numbers, e.g.
//
//	{"BenchmarkSimPushPullRound": {"iterations": 5, "ns/op": 3517197, "allocs/op": 3124}}
//
// The -compare mode is the CI bench-regression gate: it exits non-zero
// when any benchmark present in both artifacts regresses by more than
// -threshold (default 0.25, i.e. +25%) on ns/op or allocs/op.
// Benchmarks present in only one artifact are reported but never fail
// the gate, so adding or retiring benchmarks does not require a
// baseline refresh in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then whitespace-separated "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parseBench extracts {name: {unit: value}} from go-test bench output.
// Non-benchmark lines (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations of %s: %w", m[1], err)
		}
		metrics := map[string]float64{"iterations": iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: metric %q of %s: %w", fields[i+1], m[1], err)
			}
			metrics[fields[i+1]] = v
		}
		out[m[1]] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func run(in io.Reader, out io.Writer) error {
	parsed, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	// Deterministic key order so artifacts diff cleanly across runs.
	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		blob, err := json.Marshal(parsed[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, blob)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err = io.WriteString(out, b.String())
	return err
}

// gatedUnits are the metrics the regression gate enforces; other units
// (rounds, B/op, ...) are informational trajectory data.
var gatedUnits = []string{"ns/op", "allocs/op"}

// loadArtifact reads a benchjson artifact from disk.
func loadArtifact(path string) (map[string]map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]float64{}
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return out, nil
}

// compare diffs current against baseline and returns human-readable
// regression lines (worse than threshold on a gated unit), notes
// (unmatched benchmarks; improvements are silent) and the number of
// matched benchmarks. threshold 0.25 means "fail when current > 1.25 ×
// baseline".
func compare(baseline, current map[string]map[string]float64, threshold float64) (regressions, notes []string, matched int) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (skipped)", name))
			continue
		}
		matched++
		for _, unit := range gatedUnits {
			b, okB := base[unit]
			c, okC := current[name][unit]
			if !okB || !okC || b <= 0 {
				continue
			}
			if c > b*(1+threshold) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s regressed %.4g -> %.4g (+%.1f%%, gate +%.0f%%)",
					name, unit, b, c, (c/b-1)*100, threshold*100))
			}
		}
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in current run", name))
		}
	}
	sort.Strings(notes)
	return regressions, notes, matched
}

// runCompare executes the gate and writes its verdict to out; the error
// is non-nil exactly when a gated regression was found.
func runCompare(basePath, curPath string, threshold float64, out io.Writer) error {
	baseline, err := loadArtifact(basePath)
	if err != nil {
		return err
	}
	current, err := loadArtifact(curPath)
	if err != nil {
		return err
	}
	regressions, notes, matched := compare(baseline, current, threshold)
	for _, n := range notes {
		fmt.Fprintf(out, "note: %s\n", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(out, "REGRESSION: %s\n", r)
		}
		return fmt.Errorf("benchjson: %d benchmark regression(s) beyond +%.0f%%", len(regressions), threshold*100)
	}
	fmt.Fprintf(out, "benchjson: no regressions beyond +%.0f%% on %d matched benchmarks\n",
		threshold*100, matched)
	return nil
}

func main() {
	comparePath := ""
	threshold := 0.25
	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-compare":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -compare needs a baseline path")
				os.Exit(2)
			}
			comparePath = args[1]
			args = args[2:]
		case "-threshold":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -threshold needs a value")
				os.Exit(2)
			}
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad threshold %q\n", args[1])
				os.Exit(2)
			}
			threshold = v
			args = args[2:]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %s\n", args[0])
			os.Exit(2)
		}
	}
	if comparePath != "" {
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare BASELINE.json [-threshold 0.25] CURRENT.json")
			os.Exit(2)
		}
		if err := runCompare(comparePath, args[0], threshold, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(args) != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected arguments %v\n", args)
		os.Exit(2)
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
