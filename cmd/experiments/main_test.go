package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{
		"-id", "E7", "-quick", "-trials", "2", "-seed", "9",
		"-parallel", "4", "-timeout", "30s", "-json", "-out", "res", "-progress",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.id != "E7" || !o.quick || o.trials != 2 || o.seed != 9 ||
		o.parallel != 4 || o.timeout != 30*time.Second || !o.jsonOut ||
		o.outDir != "res" || !o.progress {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.id != "" || o.quick || o.trials != 0 || o.seed != 1 ||
		o.parallel != 0 || o.timeout != 0 || o.csv || o.jsonOut || o.progress {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-csv", "-json"},
		{"positional"},
		{"-trials", "abc"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}

func TestRunSingleExperimentJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-id", "E2", "-quick", "-trials", "1", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var decoded struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("stdout not JSON: %v\n%s", err, out.String())
	}
	if decoded.ID != "E2" {
		t.Fatalf("id = %q", decoded.ID)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-id", "E2", "-quick", "-trials", "1", "-out", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E2") {
		t.Fatalf("text table missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "E2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatalf("artifact not valid JSON:\n%s", raw)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-id", "E99"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d", code)
	}
}
