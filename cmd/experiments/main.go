// Command experiments regenerates the paper's evaluation: every
// theorem-level table in DESIGN.md's experiment index (E1-E22), fanned
// across cores by the deterministic parallel runner.
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed S] [-parallel W]
//	            [-timeout D] [-csv] [-json] [-out DIR] [-progress]
//
// Without -id it runs every experiment in order. Results are identical
// at any -parallel value: each trial's RNG seed is a hash of its grid
// coordinates, never of scheduling order. -json replaces the text tables
// with JSON artifacts on stdout; -out additionally writes one
// <ID>.json artifact per experiment into DIR.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gossip/internal/experiments"
)

// options holds the parsed command line.
type options struct {
	id       string
	quick    bool
	trials   int
	seed     uint64
	csv      bool
	jsonOut  bool
	outDir   string
	parallel int
	timeout  time.Duration
	progress bool
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.StringVar(&o.id, "id", "", "run a single experiment (e.g. E7); empty = all")
	fs.BoolVar(&o.quick, "quick", false, "smaller problem sizes")
	fs.IntVar(&o.trials, "trials", 0, "trials per data point (0 = default)")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned text")
	fs.BoolVar(&o.jsonOut, "json", false, "emit JSON artifacts instead of aligned text")
	fs.StringVar(&o.outDir, "out", "", "also write one <ID>.json artifact per experiment into this directory")
	fs.IntVar(&o.parallel, "parallel", 0, "worker goroutines per experiment grid (0 = GOMAXPROCS)")
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the whole run after this duration, checked between trials (0 = none)")
	fs.BoolVar(&o.progress, "progress", false, "report per-experiment trial progress on stderr")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.csv && o.jsonOut {
		return options{}, fmt.Errorf("-csv and -json are mutually exclusive")
	}
	return o, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}

	var list []experiments.Experiment
	if opts.id != "" {
		e, err := experiments.Get(opts.id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	if opts.outDir != "" {
		if err := os.MkdirAll(opts.outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	start := time.Now()
	for _, e := range list {
		cfg := experiments.Config{
			Seed:    opts.seed,
			Trials:  opts.trials,
			Quick:   opts.quick,
			Workers: opts.parallel,
		}
		if opts.progress {
			id := e.ID
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(stderr, "\r%s: %d/%d trials", id, done, total)
				if done == total {
					fmt.Fprintln(stderr)
				}
			}
		}
		tbl, err := experiments.RunOne(ctx, cfg, e)
		if err != nil {
			if opts.progress {
				fmt.Fprintln(stderr) // terminate the \r progress line
			}
			fmt.Fprintf(stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		switch {
		case opts.jsonOut:
			err = tbl.JSON(stdout)
		case opts.csv:
			err = tbl.CSV(stdout)
		default:
			fmt.Fprintf(stdout, "[%s]\n", tbl.Source)
			err = tbl.Render(stdout)
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if opts.outDir != "" {
			if err := writeArtifact(opts.outDir, tbl); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		if !opts.jsonOut && !opts.csv {
			fmt.Fprintln(stdout)
		}
	}
	if opts.progress {
		fmt.Fprintf(stderr, "%d experiment(s) in %v\n", len(list), time.Since(start).Round(time.Millisecond))
	}
	return 0
}

func writeArtifact(dir string, tbl *experiments.Table) error {
	path := filepath.Join(dir, tbl.ID+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tbl.JSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
