// Command experiments regenerates the paper's evaluation: every
// theorem-level table in DESIGN.md's experiment index (E1-E13).
//
// Usage:
//
//	experiments [-id E7] [-quick] [-trials N] [-seed S] [-csv]
//
// Without -id it runs every experiment in order.
package main

import (
	"flag"
	"fmt"
	"os"

	"gossip/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id     = flag.String("id", "", "run a single experiment (e.g. E7); empty = all")
		quick  = flag.Bool("quick", false, "smaller problem sizes")
		trials = flag.Int("trials", 0, "trials per data point (0 = default)")
		seed   = flag.Uint64("seed", 1, "random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	var list []experiments.Experiment
	if *id != "" {
		e, err := experiments.Get(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}
	for _, e := range list {
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		if *csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			fmt.Printf("[%s]\n", e.Source)
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		fmt.Println()
	}
	return 0
}
