// Command guessgame plays the Section 3.1 guessing game and reports the
// round counts for both Alice strategies, next to the Lemma 7/8
// predictions.
//
// Usage:
//
//	guessgame -m 64 -predicate random -p 0.0625 -trials 20
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gossip/internal/graphgen"
	"gossip/internal/guessing"
	"gossip/internal/stats"
)

// options holds the parsed command line.
type options struct {
	m         int
	predicate string
	p         float64
	trials    int
	seed      uint64
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested (the pattern cmd/gossipsim and
// cmd/experiments established). Predicate validity is checked here, not
// mid-run.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("guessgame", flag.ContinueOnError)
	fs.IntVar(&o.m, "m", 64, "side size (the game has 2m nodes)")
	fs.StringVar(&o.predicate, "predicate", "singleton", "target predicate: singleton|random")
	fs.Float64Var(&o.p, "p", 0.0625, "target probability for random predicate")
	fs.IntVar(&o.trials, "trials", 20, "trials to average")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.predicate != "singleton" && o.predicate != "random" {
		return options{}, fmt.Errorf("unknown predicate %q", o.predicate)
	}
	return o, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	maxRounds := 1000 * opts.m
	var fresh, random []float64
	for trial := 0; trial < opts.trials; trial++ {
		rng := graphgen.NewRand(opts.seed + uint64(trial)*7919)
		var target map[guessing.Pair]bool
		switch opts.predicate {
		case "singleton":
			target = guessing.SingletonTarget(opts.m, rng)
		case "random":
			target = guessing.RandomTarget(opts.m, opts.p, rng)
		}
		// Both strategies draw from the shared trial RNG: iterate in a
		// fixed order so a fixed -seed gives reproducible output (a map
		// range here would randomize which strategy consumes the stream
		// first).
		for _, strat := range []struct {
			name string
			mk   func() guessing.Strategy
		}{
			{"fresh", func() guessing.Strategy { return guessing.NewFreshStrategy(opts.m, rng) }},
			{"random", func() guessing.Strategy { return guessing.NewRandomStrategy(opts.m, rng) }},
		} {
			name, mk := strat.name, strat.mk
			game, err := guessing.NewGame(opts.m, cloneTarget(target))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rounds, solved, err := guessing.Play(game, mk(), maxRounds)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if !solved {
				rounds = maxRounds
			}
			if name == "fresh" {
				fresh = append(fresh, float64(rounds))
			} else {
				random = append(random, float64(rounds))
			}
		}
	}
	fmt.Printf("guessing game: m=%d predicate=%s trials=%d\n", opts.m, opts.predicate, opts.trials)
	fmt.Printf("  fresh strategy : mean %.1f rounds (median %.1f)\n",
		stats.Mean(fresh), stats.Summarize(fresh).Median)
	fmt.Printf("  random strategy: mean %.1f rounds (median %.1f)\n",
		stats.Mean(random), stats.Summarize(random).Median)
	switch opts.predicate {
	case "singleton":
		fmt.Printf("  Lemma 7 prediction: Θ(m) = Θ(%d)\n", opts.m)
	case "random":
		fmt.Printf("  Lemma 8 prediction: fresh Θ(1/p) = %.0f, random Θ(log m/p) = %.0f\n",
			1/opts.p, math.Log(float64(opts.m))/opts.p)
	}
	return 0
}

func cloneTarget(t map[guessing.Pair]bool) map[guessing.Pair]bool {
	out := make(map[guessing.Pair]bool, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
