// Command guessgame plays the Section 3.1 guessing game and reports the
// round counts for both Alice strategies, next to the Lemma 7/8
// predictions.
//
// Usage:
//
//	guessgame -m 64 -predicate random -p 0.0625 -trials 20
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gossip/internal/graphgen"
	"gossip/internal/guessing"
	"gossip/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		m         = flag.Int("m", 64, "side size (the game has 2m nodes)")
		predicate = flag.String("predicate", "singleton", "target predicate: singleton|random")
		p         = flag.Float64("p", 0.0625, "target probability for random predicate")
		trials    = flag.Int("trials", 20, "trials to average")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	maxRounds := 1000 * *m
	var fresh, random []float64
	for trial := 0; trial < *trials; trial++ {
		rng := graphgen.NewRand(*seed + uint64(trial)*7919)
		var target map[guessing.Pair]bool
		switch *predicate {
		case "singleton":
			target = guessing.SingletonTarget(*m, rng)
		case "random":
			target = guessing.RandomTarget(*m, *p, rng)
		default:
			fmt.Fprintf(os.Stderr, "unknown predicate %q\n", *predicate)
			return 1
		}
		for name, mk := range map[string]func() guessing.Strategy{
			"fresh":  func() guessing.Strategy { return guessing.NewFreshStrategy(*m, rng) },
			"random": func() guessing.Strategy { return guessing.NewRandomStrategy(*m, rng) },
		} {
			game, err := guessing.NewGame(*m, cloneTarget(target))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rounds, solved, err := guessing.Play(game, mk(), maxRounds)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if !solved {
				rounds = maxRounds
			}
			if name == "fresh" {
				fresh = append(fresh, float64(rounds))
			} else {
				random = append(random, float64(rounds))
			}
		}
	}
	fmt.Printf("guessing game: m=%d predicate=%s trials=%d\n", *m, *predicate, *trials)
	fmt.Printf("  fresh strategy : mean %.1f rounds (median %.1f)\n",
		stats.Mean(fresh), stats.Summarize(fresh).Median)
	fmt.Printf("  random strategy: mean %.1f rounds (median %.1f)\n",
		stats.Mean(random), stats.Summarize(random).Median)
	switch *predicate {
	case "singleton":
		fmt.Printf("  Lemma 7 prediction: Θ(m) = Θ(%d)\n", *m)
	case "random":
		fmt.Printf("  Lemma 8 prediction: fresh Θ(1/p) = %.0f, random Θ(log m/p) = %.0f\n",
			1 / *p, math.Log(float64(*m)) / *p)
	}
	return 0
}

func cloneTarget(t map[guessing.Pair]bool) map[guessing.Pair]bool {
	out := make(map[guessing.Pair]bool, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
