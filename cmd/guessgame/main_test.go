package main

import "testing"

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{"-m", "32", "-predicate", "random", "-p", "0.125", "-trials", "5", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.m != 32 || o.predicate != "random" || o.p != 0.125 || o.trials != 5 || o.seed != 7 {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.m != 64 || o.predicate != "singleton" || o.p != 0.0625 || o.trials != 20 || o.seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"positional"},
		{"-m", "abc"},
		{"-predicate", "nosuchpredicate"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}
