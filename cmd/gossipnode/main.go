// Command gossipnode is one process of a real-network gossip fleet: it
// hosts a contiguous share of the topology's nodes, meshes with its
// peer processes over TCP (length-prefixed frames, HELLO registration)
// and runs the same protocol code the simulator drives — for real.
//
// Every process is started with the same topology flags and the full
// peer list; its -index selects which share it hosts. Process 0 is the
// lead: after the run it collects every peer's informed-time report
// over the mesh's control channel, assembles the fleet-wide spread
// curve and classifies it against a simulator-derived ICC envelope
// (package netcheck) — the same verdict `gossipsim -mode net` applies
// to in-process runs. Exit status 0 means the fleet's real run landed
// inside the simulator's envelope.
//
// Example (two processes):
//
//	gossipnode -index 0 -peers 127.0.0.1:9801,127.0.0.1:9802 -graph grid -n 49 &
//	gossipnode -index 1 -peers 127.0.0.1:9801,127.0.0.1:9802 -graph grid -n 49
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gossip/internal/envelope"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/netcheck"
	"gossip/internal/transport"
)

type options struct {
	index    int
	peers    []string
	graph    string
	n        int
	latency  int
	p        float64
	layers   int
	algo     string
	variant  string
	source   int
	seed     uint64
	known    bool
	roundDur time.Duration
	replicas int
	timeout  time.Duration
}

func parseArgs(args []string) (options, error) {
	var o options
	var peers string
	fs := flag.NewFlagSet("gossipnode", flag.ContinueOnError)
	fs.IntVar(&o.index, "index", 0, "this process's index into -peers (0 = lead, collects the fleet verdict)")
	fs.StringVar(&peers, "peers", "", "comma-separated host:port of every process, in index order (required)")
	fs.StringVar(&o.graph, "graph", "grid", "topology family (must match across the fleet)")
	fs.IntVar(&o.n, "n", 49, "node count (must match across the fleet)")
	fs.IntVar(&o.latency, "latency", 1, "uniform/slow edge latency")
	fs.Float64Var(&o.p, "p", 0.3, "edge probability for er/gadget")
	fs.IntVar(&o.layers, "layers", 6, "ring layers")
	fs.StringVar(&o.algo, "algo", "push-pull", "driver: push-pull | flood")
	fs.StringVar(&o.variant, "variant", "", "protocol variant (driver-specific)")
	fs.IntVar(&o.source, "source", 0, "rumor source")
	fs.Uint64Var(&o.seed, "seed", 1, "seed (base of the envelope's seed family; must match across the fleet)")
	fs.BoolVar(&o.known, "known", false, "nodes know adjacent latencies")
	fs.DurationVar(&o.roundDur, "round-duration", 2*time.Millisecond, "wall-clock tick length")
	fs.IntVar(&o.replicas, "replicas", 16, "simulator replicas the envelope is built from")
	fs.DurationVar(&o.timeout, "timeout", 60*time.Second, "mesh barrier / report collection timeout")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if peers == "" {
		return options{}, fmt.Errorf("-peers is required")
	}
	o.peers = strings.Split(peers, ",")
	if len(o.peers) < 2 {
		return options{}, fmt.Errorf("a fleet needs >= 2 peers, got %d", len(o.peers))
	}
	if o.index < 0 || o.index >= len(o.peers) {
		return options{}, fmt.Errorf("-index %d outside the %d-process fleet", o.index, len(o.peers))
	}
	if d, ok := gossip.Lookup(o.algo); !ok || d.Prepare == nil {
		return options{}, fmt.Errorf("-algo must be a single-phase driver (push-pull, flood), got %q", o.algo)
	}
	return o, nil
}

// report is the per-process outcome sent to the lead over the control
// channel. InformedAt carries the full-length vector with -1 outside
// the sender's range, so the lead merges by taking each owner's values.
type report struct {
	Index      int    `json:"index"`
	Completed  bool   `json:"completed"`
	InformedAt []int  `json:"informed_at"`
	Messages   int64  `json:"messages"`
	Drops      int64  `json:"drops"`
	Error      string `json:"error,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	o, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	g, err := graphgen.Build(graphgen.Spec{
		Family: o.graph, N: o.n, Latency: o.latency, P: o.p, Layers: o.layers, Seed: o.seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	csr := g.CSR()
	opts := gossip.DriverOptions{
		Source:         o.source,
		Seed:           o.seed,
		Variant:        o.variant,
		KnownLatencies: o.known,
		MaxRounds:      1 << 20,
	}
	// Every process derives the identical envelope (the simulator is
	// deterministic), so horizon and verdict need no pre-run coordination.
	env, err := netcheck.BuildSimEnvelope(netcheck.Spec{
		CSR: csr, Driver: o.algo, Opts: opts, Replicas: o.replicas,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	mesh, err := transport.NewTCPMesh(o.index, o.peers, csr.N(), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer mesh.Close()
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	if err := mesh.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("gossipnode %d/%d: mesh up, hosting %d nodes\n", o.index, len(o.peers), len(mesh.Local()))

	res, runErr := gossip.RunNet(gossip.NetConfig{
		Mesh:      mesh,
		CSR:       csr,
		Driver:    o.algo,
		Opts:      opts,
		Round:     o.roundDur,
		MaxRounds: netcheck.Horizon(env),
	})
	rep := report{Index: o.index, Completed: res.Completed, InformedAt: res.InformedAt,
		Messages: res.Messages, Drops: res.Drops}
	if runErr != nil {
		rep.Error = runErr.Error()
		rep.Completed = false
	}

	if o.index != 0 {
		return runPeer(mesh, rep, o.timeout)
	}
	return runLead(mesh, env, rep, len(o.peers), o.timeout)
}

// runPeer ships this process's report to the lead and waits for the
// lead's release message so the sockets stay up until it was read.
func runPeer(mesh *transport.TCPMesh, rep report, timeout time.Duration) int {
	payload, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := mesh.SendControl(0, payload); err != nil {
		fmt.Fprintf(os.Stderr, "gossipnode %d: reporting to lead: %v\n", rep.Index, err)
		return 1
	}
	deadline := time.After(timeout)
	for {
		select {
		case cm := <-mesh.Control():
			if cm.FromProc == 0 {
				fmt.Printf("gossipnode %d: released (%s)\n", rep.Index, cm.Payload)
				if rep.Error != "" {
					return 1
				}
				return 0
			}
		case <-deadline:
			fmt.Fprintf(os.Stderr, "gossipnode %d: lead never released\n", rep.Index)
			return 1
		}
	}
}

// runLead collects every peer's report, assembles the fleet-wide
// informed-time vector and applies the netcheck verdict.
func runLead(mesh *transport.TCPMesh, env *envelope.Envelope, own report, procs int, timeout time.Duration) int {
	merged := own
	reports := map[int]report{0: own}
	deadline := time.After(timeout)
	for len(reports) < procs {
		select {
		case cm := <-mesh.Control():
			var r report
			if err := json.Unmarshal(cm.Payload, &r); err != nil || r.Index != cm.FromProc {
				fmt.Fprintf(os.Stderr, "gossipnode 0: bad report from %d\n", cm.FromProc)
				continue
			}
			reports[r.Index] = r
		case <-deadline:
			fmt.Fprintf(os.Stderr, "gossipnode 0: only %d/%d reports arrived\n", len(reports), procs)
			return 1
		}
	}
	completed := true
	for idx, r := range reports {
		if r.Error != "" {
			fmt.Fprintf(os.Stderr, "gossipnode 0: process %d failed: %s\n", idx, r.Error)
			completed = false
			continue
		}
		completed = completed && r.Completed
		if idx == 0 {
			continue
		}
		lo, hi := transport.NodeRange(len(own.InformedAt), procs, idx)
		for u := lo; u < hi && u < len(merged.InformedAt); u++ {
			merged.InformedAt[u] = r.InformedAt[u]
		}
		merged.Messages += r.Messages
		merged.Drops += r.Drops
	}
	verdict := netcheck.CheckResult(env, gossip.NetResult{
		Completed:  completed,
		InformedAt: merged.InformedAt,
	})
	status := "PASS"
	if verdict != nil {
		status = "FAIL: " + verdict.Error()
	}
	fmt.Printf("gossipnode fleet: completed=%v messages=%d drops=%d envelope=%s\n",
		completed, merged.Messages, merged.Drops, status)
	for i := 1; i < procs; i++ {
		if err := mesh.SendControl(i, []byte(status)); err != nil {
			fmt.Fprintf(os.Stderr, "gossipnode 0: releasing %d: %v\n", i, err)
		}
	}
	// Leave the release frames a moment to flush before sockets close.
	time.Sleep(200 * time.Millisecond)
	if verdict != nil {
		return 1
	}
	return 0
}
