// Command gossipsim runs one dissemination algorithm on one generated
// topology and prints the round/message accounting.
//
// Usage:
//
//	gossipsim -graph dumbbell -n 16 -latency 64 -algo auto -seed 3
//
// Graphs: clique, star, path, cycle, grid, tree, er, regular, dumbbell,
// ring, gadget. The -algo value resolves through the internal/gossip
// driver registry, so every registered protocol — dissemination (auto,
// push-pull, spanner, pattern, flood, dtg, superstep, rr) and
// coordination (election, echo) alike — is runnable from here;
// `gossipsim -h` lists the live set. -mode net replays a single-phase
// driver on a real goroutine mesh instead of the calendar engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gossip/internal/adversity"
	"gossip/internal/core"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/netcheck"
	"gossip/internal/viz"
)

// options holds the parsed command line.
type options struct {
	graphName string
	n         int
	latency   int
	p         float64
	layers    int
	algoName  string
	algo      core.Algorithm
	source    int
	seed      uint64
	workers   int
	known     bool
	analyze   bool
	curve     bool
	loadPath  string
	savePath  string
	loss      float64
	churn     string
	faultSpec string
	adversity *adversity.Spec
	mode      string
	roundDur  time.Duration
	trials    int
	replicas  int
}

// parseArgs parses the command line into options. Split from main so the
// flag surface is regression-tested. The -algo value is validated against
// the internal/gossip driver registry, so every registered protocol
// (including dtg, rr, superstep) is runnable from here with no per-CLI
// plumbing.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	fs.StringVar(&o.graphName, "graph", "clique", "topology: clique|star|path|cycle|grid|tree|er|regular|dumbbell|ring|gadget")
	fs.IntVar(&o.n, "n", 16, "node count (per side for dumbbell/gadget; per layer for ring)")
	fs.IntVar(&o.latency, "latency", 1, "uniform/slow edge latency, depending on topology")
	fs.Float64Var(&o.p, "p", 0.3, "edge or target probability for er/gadget")
	fs.IntVar(&o.layers, "layers", 6, "ring layers")
	fs.StringVar(&o.algoName, "algo", "auto", "algorithm: "+strings.Join(core.Algorithms(), "|"))
	fs.IntVar(&o.source, "source", 0, "rumor source")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	fs.IntVar(&o.workers, "workers", 0, "intra-round simulation shards (results identical for any value; 0/1 = serial)")
	fs.BoolVar(&o.known, "known", false, "nodes know adjacent latencies (Section 4 model)")
	fs.BoolVar(&o.analyze, "analyze", true, "print the conductance profile")
	fs.BoolVar(&o.curve, "curve", false, "print the push-pull spreading curve as a sparkline")
	fs.StringVar(&o.loadPath, "load", "", "load the graph from an edge-list file instead of generating")
	fs.StringVar(&o.savePath, "save", "", "save the generated graph to an edge-list file")
	fs.StringVar(&o.mode, "mode", "sim", "execution mode: sim (deterministic calendar) | net (real goroutine mesh, validated against a simulator-derived ICC envelope)")
	fs.DurationVar(&o.roundDur, "round-duration", 2*time.Millisecond, "net mode: wall-clock tick length")
	fs.IntVar(&o.trials, "trials", 5, "net mode: real-mesh trials to classify")
	fs.IntVar(&o.replicas, "replicas", 16, "net mode: simulator replicas the envelope is built from")
	fs.Float64Var(&o.loss, "loss", 0, "uniform per-exchange message-loss probability in [0,1]")
	fs.StringVar(&o.churn, "churn", "", "churn items NODE:FROM-TO[:amnesia], comma-separated (TO may be \"inf\")")
	fs.StringVar(&o.faultSpec, "fault-spec", "", "full fault schedule DSL, e.g. 'loss=0.1;churn=3:10-20:amnesia;flap=0-1:5-9;crash=4:6,7'")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.mode != "sim" && o.mode != "net" {
		return options{}, fmt.Errorf("unknown -mode %q (sim|net)", o.mode)
	}
	if o.mode == "net" {
		if d, ok := gossip.Lookup(o.algoName); !ok || d.Prepare == nil {
			return options{}, fmt.Errorf("-mode net needs a single-phase driver (push-pull, flood), got %q", o.algoName)
		}
	} else {
		algo, err := core.ParseAlgorithm(o.algoName)
		if err != nil {
			return options{}, err
		}
		o.algo = algo
	}
	adv, err := buildSpec(o)
	if err != nil {
		return options{}, err
	}
	o.adversity = adv
	return o, nil
}

// buildSpec merges the convenience flags (-loss, -churn) into the full
// -fault-spec schedule; nil means benign.
func buildSpec(o options) (*adversity.Spec, error) {
	spec := &adversity.Spec{}
	if o.faultSpec != "" {
		var err error
		if spec, err = adversity.ParseSpec(o.faultSpec); err != nil {
			return nil, err
		}
	}
	if o.loss != 0 {
		if spec.Loss != 0 {
			return nil, fmt.Errorf("loss set by both -loss and -fault-spec")
		}
		spec.Loss = o.loss
	}
	if o.churn != "" {
		items := strings.Split(o.churn, ",")
		churnSpec, err := adversity.ParseSpec("churn=" + strings.Join(items, ";churn="))
		if err != nil {
			return nil, err
		}
		spec.Churn = append(spec.Churn, churnSpec.Churn...)
	}
	if spec.Empty() {
		return nil, nil
	}
	return spec, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var g *graph.Graph
	graphName := opts.graphName
	if opts.loadPath != "" {
		f, ferr := os.Open(opts.loadPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		g, err = graph.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		graphName = opts.loadPath
	} else {
		g, err = buildGraph(opts.graphName, opts.n, opts.latency, opts.p, opts.layers, opts.seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if opts.savePath != "" {
		f, ferr := os.Create(opts.savePath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		if err := g.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("saved graph to %s\n", opts.savePath)
	}
	fmt.Printf("graph: %s  n=%d m=%d Δ=%d D=%d ℓmax=%d\n",
		graphName, g.N(), g.M(), g.MaxDegree(), g.WeightedDiameter(), g.MaxLatency())

	if opts.analyze {
		prof, err := core.Analyze(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		exact := "estimated"
		if prof.Conductance.Exact {
			exact = "exact"
		}
		fmt.Printf("conductance (%s): φ*=%.4f ℓ*=%d φavg=%.5f L=%d\n",
			exact, prof.Conductance.PhiStar, prof.Conductance.EllStar,
			prof.Conductance.PhiAvg, prof.Conductance.NonEmptyClasses)
		fmt.Printf("bounds: lower=%.0f push-pull=%.0f spanner(known)=%.0f pattern=%.0f unified=%.0f\n",
			prof.Bounds.Lower, prof.Bounds.PushPull, prof.Bounds.SpannerKnown,
			prof.Bounds.Pattern, prof.Bounds.Unified)
	}

	if opts.adversity != nil {
		fmt.Printf("adversity: %s\n", opts.adversity)
	}
	if opts.mode == "net" {
		return runNet(g, opts)
	}
	out, err := core.Disseminate(g, core.Options{
		Algorithm:      opts.algo,
		Source:         opts.source,
		KnownLatencies: opts.known,
		Seed:           opts.seed,
		Workers:        opts.workers,
		Adversity:      opts.adversity,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("run: algorithm=%s rounds=%d exchanges=%d completed=%v\n",
		out.Algorithm, out.Rounds, out.Exchanges, out.Completed)
	if opts.curve {
		res, err := gossip.RunPushPull(g, opts.source, opts.seed, 1<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(viz.Curve("push-pull spread", res.SpreadCurve(), 48))
	}
	if !out.Completed {
		return 2
	}
	return 0
}

// runNet is the -mode net path: the same protocol code on a real
// in-process goroutine mesh instead of the calendar, each trial
// classified against a simulator-derived ICC envelope (see package
// netcheck). Exit 0 = every trial completed and the spec passed.
func runNet(g *graph.Graph, opts options) int {
	rep, err := netcheck.RunChan(netcheck.Spec{
		Name:   fmt.Sprintf("%s/%s", opts.algoName, opts.graphName),
		CSR:    g.CSR(),
		Driver: opts.algoName,
		Opts: gossip.DriverOptions{
			Source:         opts.source,
			Seed:           opts.seed,
			KnownLatencies: opts.known,
			MaxRounds:      1 << 20,
		},
		Trials:   opts.trials,
		Replicas: opts.replicas,
		Round:    opts.roundDur,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(rep.String())
	if !rep.Passed() {
		fmt.Println("netcheck: FAIL")
		return 2
	}
	fmt.Println("netcheck: PASS")
	return 0
}

// buildGraph dispatches to the shared family builder (graphgen.Build),
// which is also the construction path behind gossipd simulation requests.
func buildGraph(name string, n, latency int, p float64, layers int, seed uint64) (*graph.Graph, error) {
	return graphgen.Build(graphgen.Spec{
		Family:  name,
		N:       n,
		Latency: latency,
		P:       p,
		Layers:  layers,
		Seed:    seed,
	})
}
