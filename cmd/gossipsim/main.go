// Command gossipsim runs one dissemination algorithm on one generated
// topology and prints the round/message accounting.
//
// Usage:
//
//	gossipsim -graph dumbbell -n 16 -latency 64 -algo auto -seed 3
//
// Graphs: clique, star, path, cycle, grid, tree, er, regular, dumbbell,
// ring, gadget. Algorithms: auto, push-pull, spanner, pattern, flood.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gossip/internal/core"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/viz"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		graphName = flag.String("graph", "clique", "topology: clique|star|path|cycle|grid|tree|er|regular|dumbbell|ring|gadget")
		n         = flag.Int("n", 16, "node count (per side for dumbbell/gadget; per layer for ring)")
		latency   = flag.Int("latency", 1, "uniform/slow edge latency, depending on topology")
		p         = flag.Float64("p", 0.3, "edge or target probability for er/gadget")
		layers    = flag.Int("layers", 6, "ring layers")
		algoName  = flag.String("algo", "auto", "algorithm: auto|push-pull|spanner|pattern|flood")
		source    = flag.Int("source", 0, "rumor source")
		seed      = flag.Uint64("seed", 1, "random seed")
		known     = flag.Bool("known", false, "nodes know adjacent latencies (Section 4 model)")
		analyze   = flag.Bool("analyze", true, "print the conductance profile")
		curve     = flag.Bool("curve", false, "print the push-pull spreading curve as a sparkline")
		loadPath  = flag.String("load", "", "load the graph from an edge-list file instead of generating")
		savePath  = flag.String("save", "", "save the generated graph to an edge-list file")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		g, err = graph.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		*graphName = *loadPath
	} else {
		g, err = buildGraph(*graphName, *n, *latency, *p, *layers, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *savePath != "" {
		f, ferr := os.Create(*savePath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		if err := g.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("saved graph to %s\n", *savePath)
	}
	fmt.Printf("graph: %s  n=%d m=%d Δ=%d D=%d ℓmax=%d\n",
		*graphName, g.N(), g.M(), g.MaxDegree(), g.WeightedDiameter(), g.MaxLatency())

	if *analyze {
		prof, err := core.Analyze(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		exact := "estimated"
		if prof.Conductance.Exact {
			exact = "exact"
		}
		fmt.Printf("conductance (%s): φ*=%.4f ℓ*=%d φavg=%.5f L=%d\n",
			exact, prof.Conductance.PhiStar, prof.Conductance.EllStar,
			prof.Conductance.PhiAvg, prof.Conductance.NonEmptyClasses)
		fmt.Printf("bounds: lower=%.0f push-pull=%.0f spanner(known)=%.0f pattern=%.0f unified=%.0f\n",
			prof.Bounds.Lower, prof.Bounds.PushPull, prof.Bounds.SpannerKnown,
			prof.Bounds.Pattern, prof.Bounds.Unified)
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out, err := core.Disseminate(g, core.Options{
		Algorithm:      algo,
		Source:         *source,
		KnownLatencies: *known,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("run: algorithm=%s rounds=%d exchanges=%d completed=%v\n",
		out.Algorithm, out.Rounds, out.Exchanges, out.Completed)
	if *curve {
		res, err := gossip.RunPushPull(g, *source, *seed, 1<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(viz.Curve("push-pull spread", res.SpreadCurve(), 48))
	}
	if !out.Completed {
		return 2
	}
	return 0
}

func parseAlgo(name string) (core.Algorithm, error) {
	switch strings.ToLower(name) {
	case "auto":
		return core.Auto, nil
	case "push-pull", "pushpull":
		return core.PushPull, nil
	case "spanner":
		return core.Spanner, nil
	case "pattern":
		return core.Pattern, nil
	case "flood":
		return core.Flood, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func buildGraph(name string, n, latency int, p float64, layers int, seed uint64) (*graph.Graph, error) {
	rng := graphgen.NewRand(seed)
	switch strings.ToLower(name) {
	case "clique":
		return graphgen.Clique(n, latency), nil
	case "star":
		return graphgen.Star(n, latency), nil
	case "path":
		return graphgen.Path(n, latency), nil
	case "cycle":
		return graphgen.Cycle(n, latency), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graphgen.Grid(side, side, latency), nil
	case "tree":
		return graphgen.BinaryTree(n, latency), nil
	case "er":
		return graphgen.ErdosRenyi(n, p, latency, rng)
	case "regular":
		return graphgen.RandomRegular(n, 4, latency, rng)
	case "dumbbell":
		return graphgen.Dumbbell(n, latency), nil
	case "ring":
		ring, err := graphgen.NewRingNetwork(layers, n, latency, rng)
		if err != nil {
			return nil, err
		}
		return ring.Graph, nil
	case "gadget":
		net, err := graphgen.NewTheorem10Network(n, 1, latency, p, rng)
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}
