package main

import (
	"os"
	"strings"
	"testing"

	"gossip/internal/core"
	"gossip/internal/gossip"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{
		"-graph", "dumbbell", "-n", "16", "-latency", "64",
		"-algo", "push-pull", "-seed", "3", "-known", "-curve", "-analyze=false",
		"-workers", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "dumbbell" || o.n != 16 || o.latency != 64 ||
		o.algoName != "push-pull" || o.algo != core.PushPull ||
		o.seed != 3 || !o.known || !o.curve || o.analyze || o.workers != 8 {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "clique" || o.n != 16 || o.latency != 1 || o.p != 0.3 ||
		o.layers != 6 || o.algoName != "auto" || o.seed != 1 || !o.analyze ||
		o.workers != 0 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-algo", "nosuchalgo"},
		{"positional"},
		{"-n", "abc"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}

func TestParseAlgoNames(t *testing.T) {
	// -algo values resolve through the driver registry, aliases and
	// registry-only protocols included.
	cases := map[string]core.Algorithm{
		"auto":      core.Auto,
		"unified":   core.Auto,
		"push-pull": core.PushPull,
		"pushpull":  core.PushPull,
		"SPANNER":   core.Spanner,
		"pattern":   core.Pattern,
		"flood":     core.Flood,
		"dtg":       core.Algorithm("dtg"),
	}
	for name, want := range cases {
		o, err := parseArgs([]string{"-algo", name})
		if err != nil {
			t.Fatalf("-algo %q: %v", name, err)
		}
		if o.algo != want {
			t.Fatalf("-algo %q = %v, want %v", name, o.algo, want)
		}
	}
}

// TestUsageListsEveryDriver is the usage golden test: the -algo surface
// is generated from the driver registry (core.Algorithms() ==
// gossip.Names()), every registered name parses, and the package doc
// comment — the one place a list is hand-written — names every
// registered driver, so registering a new protocol without updating the
// doc fails here instead of shipping stale help text.
func TestUsageListsEveryDriver(t *testing.T) {
	names := gossip.Names()
	algos := core.Algorithms()
	if len(algos) != len(names) {
		t.Fatalf("core.Algorithms() = %v, registry has %v", algos, names)
	}
	for i, n := range names {
		if algos[i] != n {
			t.Fatalf("core.Algorithms()[%d] = %q, registry says %q", i, algos[i], n)
		}
		if _, err := parseArgs([]string{"-algo", n}); err != nil {
			t.Fatalf("registered driver %q rejected by -algo: %v", n, err)
		}
	}
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("main.go has no package clause")
	}
	for _, n := range names {
		if !strings.Contains(doc, n) {
			t.Errorf("package doc comment does not mention registered driver %q", n)
		}
	}
}

// TestReadmeCoordinationExamples pins the README's "Coordination
// protocols" section: every single-line gossipsim example there (the
// election-under-churn run and the echo wave) must parse through the
// real flag surface and complete, so the published commands cannot rot.
func TestReadmeCoordinationExamples(t *testing.T) {
	src, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	var examples [][]string
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "cmd/gossipsim") {
			continue
		}
		if !strings.Contains(line, "-algo election") && !strings.Contains(line, "-algo echo") {
			continue
		}
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "./cmd/gossipsim" {
				examples = append(examples, fields[i+1:])
				break
			}
		}
	}
	if len(examples) < 2 {
		t.Fatalf("README carries %d coordination gossipsim examples, want the election and echo runs", len(examples))
	}
	for _, args := range examples {
		o, err := parseArgs(args)
		if err != nil {
			t.Fatalf("README example %v does not parse: %v", args, err)
		}
		g, err := buildGraph(o.graphName, o.n, o.latency, o.p, o.layers, o.seed)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.Disseminate(g, core.Options{
			Algorithm:      o.algo,
			Source:         o.source,
			KnownLatencies: o.known,
			Seed:           o.seed,
			Workers:        o.workers,
			Adversity:      o.adversity,
		})
		if err != nil {
			t.Fatalf("README example %v failed: %v", args, err)
		}
		if !out.Completed {
			t.Fatalf("README example %v did not complete (rounds=%d)", args, out.Rounds)
		}
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	for _, name := range []string{
		"clique", "star", "path", "cycle", "grid", "tree", "er",
		"regular", "dumbbell", "ring", "gadget",
	} {
		g, err := buildGraph(name, 8, 2, 0.5, 3, 1)
		if err != nil {
			t.Fatalf("buildGraph(%q): %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("buildGraph(%q): empty graph", name)
		}
	}
	if _, err := buildGraph("bogus", 8, 1, 0.3, 3, 1); err == nil {
		t.Fatal("bogus graph accepted")
	}
}
