package main

import (
	"testing"

	"gossip/internal/core"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{
		"-graph", "dumbbell", "-n", "16", "-latency", "64",
		"-algo", "push-pull", "-seed", "3", "-known", "-curve", "-analyze=false",
		"-workers", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "dumbbell" || o.n != 16 || o.latency != 64 ||
		o.algoName != "push-pull" || o.algo != core.PushPull ||
		o.seed != 3 || !o.known || !o.curve || o.analyze || o.workers != 8 {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.graphName != "clique" || o.n != 16 || o.latency != 1 || o.p != 0.3 ||
		o.layers != 6 || o.algoName != "auto" || o.seed != 1 || !o.analyze ||
		o.workers != 0 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-algo", "nosuchalgo"},
		{"positional"},
		{"-n", "abc"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("parseArgs(%v) accepted", args)
		}
	}
}

func TestParseAlgoNames(t *testing.T) {
	// -algo values resolve through the driver registry, aliases and
	// registry-only protocols included.
	cases := map[string]core.Algorithm{
		"auto":      core.Auto,
		"unified":   core.Auto,
		"push-pull": core.PushPull,
		"pushpull":  core.PushPull,
		"SPANNER":   core.Spanner,
		"pattern":   core.Pattern,
		"flood":     core.Flood,
		"dtg":       core.Algorithm("dtg"),
	}
	for name, want := range cases {
		o, err := parseArgs([]string{"-algo", name})
		if err != nil {
			t.Fatalf("-algo %q: %v", name, err)
		}
		if o.algo != want {
			t.Fatalf("-algo %q = %v, want %v", name, o.algo, want)
		}
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	for _, name := range []string{
		"clique", "star", "path", "cycle", "grid", "tree", "er",
		"regular", "dumbbell", "ring", "gadget",
	} {
		g, err := buildGraph(name, 8, 2, 0.5, 3, 1)
		if err != nil {
			t.Fatalf("buildGraph(%q): %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("buildGraph(%q): empty graph", name)
		}
	}
	if _, err := buildGraph("bogus", 8, 1, 0.3, 3, 1); err == nil {
		t.Fatal("bogus graph accepted")
	}
}
